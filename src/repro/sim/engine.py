"""Deterministic discrete-event simulation engine.

The engine is a priority queue of timestamped events plus a simulated
clock.  Everything above it (workers, transfer engines, the scheduler's
notion of "busy time") is driven by callbacks fired in timestamp order.

Determinism
-----------
Two runs with the same inputs must produce *identical* traces, so ties in
timestamps are broken by a monotonically increasing sequence number — the
insertion order — never by object identity or hash order.  No wall-clock
time is ever consulted.

Performance architecture (DESIGN.md §17)
----------------------------------------
The event store is an :class:`EventHeap`: a binary heap over an index of
``(time, seq, slot)`` keys — compared at C speed, no Python ``__lt__``
round-trips — next to free-listed parallel slot arrays holding the event
payloads.  Cancelled events are skipped lazily at pop time and their
slots recycled.  :meth:`SimEngine.run` and :meth:`SimEngine.run_while`
drain events in a single flattened loop (one Python frame for the whole
run instead of one :meth:`step` frame per event); the cooperative
wall-clock deadline is sampled at exactly the same event ordinals as the
one-event-per-call :meth:`step` path, so both modes raise
:class:`WallDeadlineExceededError` at identical points.

An optional compiled event core (``REPRO_SIM_BACKEND=compiled``, see
:mod:`repro.sim.backend`) replaces the heap with a C extension using raw
``double``/``int64`` arrays — no tuple boxing at all.  The pure-Python
heap remains the reference; the golden-trace suite pins both to
byte-identical traces.
"""

from __future__ import annotations

import math
import time as _time
from enum import Enum
from heapq import heappop, heappush
from typing import Callable, Optional


class WallDeadlineExceededError(RuntimeError):
    """The engine's cooperative wall-clock deadline passed mid-run.

    Raised from :meth:`SimEngine.step` when :attr:`SimEngine.wall_deadline`
    is set and the host clock (``time.perf_counter``) moves past it.  The
    check is cooperative — sampled every
    :data:`WALL_DEADLINE_CHECK_EVERY` events, so a run overshoots its
    deadline by at most one check window — and costs one attribute test
    per event when no deadline is armed.
    """

    def __init__(self, deadline: float, now: float, events: int) -> None:
        super().__init__(
            f"simulation exceeded its wall-clock deadline by {now - deadline:.3f}s "
            f"after {events} events"
        )
        self.deadline = deadline
        self.overshoot = now - deadline


#: How many events elapse between wall-clock samples when a deadline is armed.
WALL_DEADLINE_CHECK_EVERY = 256


class EventKind(Enum):
    """Classification of simulation events, used for tracing and debugging."""

    GENERIC = "generic"
    TASK_START = "task-start"
    TASK_END = "task-end"
    TASK_FAIL = "task-fail"
    TRANSFER_START = "transfer-start"
    TRANSFER_END = "transfer-end"
    WORKER_WAKE = "worker-wake"
    WORKER_DOWN = "worker-down"
    RETRY = "retry"
    RUNTIME = "runtime"
    WATCHDOG = "watchdog"
    NOTIFY = "notify"
    STEAL = "steal"
    NODE_DOWN = "node-down"
    NODE_UP = "node-up"
    RETRANSMIT = "retransmit"


class Event:
    """A scheduled callback.

    Events compare by ``(time, seq)`` where ``seq`` is the insertion
    order; this makes the event queue fully deterministic.  The heap
    never compares events directly (its index keys carry the ordering),
    but ``__lt__`` is kept for callers that sort events themselves.
    """

    __slots__ = ("time", "seq", "kind", "callback", "label", "cancelled",
                 "_heap", "_handle")

    def __init__(
        self,
        time: float,
        seq: int,
        kind: EventKind,
        callback: Callable[[], None],
        label: str = "",
        cancelled: bool = False,
    ) -> None:
        self.time = time
        self.seq = seq
        self.kind = kind
        self.callback = callback
        self.label = label
        self.cancelled = cancelled
        self._heap: Optional[EventHeap] = None
        self._handle: int = -1

    def cancel(self) -> None:
        """Mark the event as cancelled; it will be skipped when popped."""
        self.cancelled = True
        heap = self._heap
        if heap is not None:
            heap.cancel_handle(self._handle)

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = " cancelled" if self.cancelled else ""
        return f"Event(t={self.time:.6f}, seq={self.seq}, {self.kind.value}{state})"


class EventHeap:
    """Array-backed event store: heap index + free-listed slot arrays.

    The ordering index is a binary heap of ``(time, seq, slot)`` tuples
    (tuple comparison runs in C and never reaches ``slot`` because
    ``(time, seq)`` is unique).  Event payloads live in a parallel slot
    array recycled through a free list, so a long run reuses a small,
    stable set of slots instead of growing the store monotonically.

    Cancellation is lazy: a cancelled event keeps its heap entry and is
    skipped (and its slot freed) when it reaches the top.  A slot freed
    by a pop may be reused immediately; stale handles held by already
    popped or cancelled events are ignored via a per-slot generation
    counter, so free-list reuse can never resurrect or re-cancel a
    later occupant (property-tested in ``tests/sim/test_event_heap.py``).
    """

    __slots__ = ("_index", "_events", "_gen", "_free", "_live")

    def __init__(self) -> None:
        self._index: list[tuple[float, int, int]] = []
        self._events: list[Optional[Event]] = []
        self._gen: list[int] = []
        self._free: list[int] = []
        #: live (non-cancelled, not-yet-popped) events
        self._live = 0

    def __len__(self) -> int:
        return len(self._index)

    @property
    def live(self) -> int:
        return self._live

    @property
    def slots(self) -> int:
        """Allocated slot count (high-water mark of concurrent events)."""
        return len(self._events)

    def push(self, event: Event) -> None:
        """Insert ``event``; its ``(time, seq)`` must be unique."""
        free = self._free
        if free:
            slot = free.pop()
            self._gen[slot] += 1
        else:
            slot = len(self._events)
            self._events.append(None)
            self._gen.append(0)
        self._events[slot] = event
        event._heap = self
        event._handle = (self._gen[slot] << 32) | slot
        heappush(self._index, (event.time, event.seq, slot))
        self._live += 1

    def cancel_handle(self, handle: int) -> None:
        """Drop the payload of a still-stored event (stale handles no-op)."""
        slot = handle & 0xFFFFFFFF
        if 0 <= slot < len(self._events) and (self._gen[slot] << 32) | slot == handle:
            ev = self._events[slot]
            if ev is not None and ev.cancelled:
                # invalidate the handle so a double-cancel cannot count
                # twice (generations only ever need to increase)
                self._gen[slot] += 1
                self._live -= 1

    def _release(self, slot: int) -> None:
        self._events[slot] = None
        self._gen[slot] += 1
        self._free.append(slot)

    def pop(self) -> Optional[Event]:
        """Remove and return the earliest live event (``None`` if empty).

        Cancelled events encountered on the way are discarded and their
        slots recycled.
        """
        index = self._index
        events = self._events
        while index:
            _, _, slot = heappop(index)
            ev = events[slot]
            self._release(slot)
            if ev is None or ev.cancelled:
                continue
            self._live -= 1
            ev._heap = None
            return ev
        return None

    def peek_time(self) -> Optional[float]:
        """Earliest live event time without removing it (prunes cancelled)."""
        index = self._index
        events = self._events
        while index:
            entry = index[0]
            ev = events[entry[2]]
            if ev is None or ev.cancelled:
                heappop(index)
                self._release(entry[2])
                continue
            return entry[0]
        return None

    def peek(self) -> Optional[Event]:
        """Earliest live event without removing it (prunes cancelled)."""
        if self.peek_time() is None:
            return None
        return self._events[self._index[0][2]]

    def clear(self) -> None:
        for ev in self._events:
            if ev is not None:
                ev._heap = None
        self._index.clear()
        self._events.clear()
        self._gen.clear()
        self._free.clear()
        self._live = 0


def _backend_classes() -> "tuple[Callable[[], EventHeap], type]":
    from repro.sim.backend import event_factory, heap_factory

    return heap_factory(), event_factory()


class SimEngine:
    """Discrete-event simulation core.

    Usage::

        eng = SimEngine()
        eng.schedule(1.5, lambda: print("fires at t=1.5"))
        eng.run()
        assert eng.now == 1.5

    The engine may be driven either to completion (:meth:`run`), event
    by event (:meth:`step`), or while a condition holds
    (:meth:`run_while`), and supports bounded runs (``until=``).
    """

    def __init__(self) -> None:
        heap_cls, self._event_cls = _backend_classes()
        self._heap: EventHeap = heap_cls()
        self._seq = 0
        self._now: float = 0.0
        self._events_processed: int = 0
        self._running = False
        #: Absolute ``time.perf_counter`` deadline; ``None`` disables the
        #: cooperative check (see :class:`WallDeadlineExceededError`).
        self.wall_deadline: Optional[float] = None

    # ------------------------------------------------------------------
    # Clock
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time (seconds)."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Number of events executed so far (cancelled events excluded)."""
        return self._events_processed

    @property
    def pending(self) -> int:
        """Number of events still queued (including cancelled ones)."""
        return len(self._heap)

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(
        self,
        time: float,
        callback: Callable[[], None],
        *,
        kind: EventKind = EventKind.GENERIC,
        label: str = "",
    ) -> Event:
        """Schedule ``callback`` to fire at absolute simulated ``time``.

        ``time`` must not be in the past.  Returns the :class:`Event`,
        which the caller may later :meth:`Event.cancel`.
        """
        if math.isnan(time):
            raise ValueError("cannot schedule an event at NaN time")
        if time < self._now:
            raise ValueError(
                f"cannot schedule event at t={time} before current time t={self._now}"
            )
        seq = self._seq
        self._seq = seq + 1
        ev = self._event_cls(time, seq, kind, callback, label)
        self._heap.push(ev)
        return ev

    def schedule_after(
        self,
        delay: float,
        callback: Callable[[], None],
        *,
        kind: EventKind = EventKind.GENERIC,
        label: str = "",
    ) -> Event:
        """Schedule ``callback`` ``delay`` seconds from now (``delay >= 0``)."""
        if delay < 0:
            raise ValueError(f"negative delay: {delay}")
        return self.schedule(self._now + delay, callback, kind=kind, label=label)

    def schedule_every(
        self,
        interval: float,
        callback: Callable[[], object],
        *,
        kind: EventKind = EventKind.GENERIC,
        label: str = "",
        first: Optional[float] = None,
    ) -> "RecurringEvent":
        """Fire ``callback`` every ``interval`` simulated seconds.

        The first firing is ``first`` seconds from now (default
        ``interval``).  The callback may return ``False`` to stop the
        series; the returned :class:`RecurringEvent` handle also stops it
        via :meth:`RecurringEvent.cancel`.  Used by periodic services
        (profile-store checkpointing) that piggyback on the event loop.
        """
        if interval <= 0:
            raise ValueError(f"recurring interval must be positive, got {interval}")
        if first is not None and first < 0:
            raise ValueError(f"negative first delay: {first}")
        return RecurringEvent(self, interval, callback, kind=kind, label=label,
                              first=first)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def _check_wall_deadline(self) -> None:
        now = _time.perf_counter()
        if now > self.wall_deadline:  # type: ignore[operator]
            raise WallDeadlineExceededError(
                self.wall_deadline, now, self._events_processed  # type: ignore[arg-type]
            )

    def step(self) -> bool:
        """Execute the next non-cancelled event.

        Returns ``True`` if an event was executed, ``False`` if the queue
        is exhausted.
        """
        if (
            self.wall_deadline is not None
            and self._events_processed % WALL_DEADLINE_CHECK_EVERY == 0
        ):
            self._check_wall_deadline()
        ev = self._heap.pop()
        if ev is None:
            return False
        if ev.time < self._now:  # pragma: no cover - defensive
            raise RuntimeError("event queue yielded an event in the past")
        self._now = ev.time
        self._events_processed += 1
        ev.callback()
        return True

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> int:
        """Run events in order until the queue drains.

        Parameters
        ----------
        until:
            If given, stop once the next event would fire strictly after
            ``until``.  A bounded run always lands the clock exactly on
            ``until`` (unless it is already past it), even when the
            queue is empty or drains early.
        max_events:
            Safety valve; execute at most this many events, raising
            :class:`RuntimeError` if another would follow (catches
            accidental infinite loops).

        Returns the number of events executed by this call.

        The drain is batched: one Python loop processes every event
        without a :meth:`step` call per event.  The wall-clock deadline
        is still sampled once per drained event at the exact ordinals
        the stepped path uses (every
        :data:`WALL_DEADLINE_CHECK_EVERY`-th processed event), never
        once per batch.
        """
        if self._running:
            raise RuntimeError("SimEngine.run() is not reentrant")
        self._running = True
        heap = self._heap
        executed = 0
        try:
            while True:
                tnext = heap.peek_time()
                if tnext is None:
                    break
                if until is not None and tnext > until:
                    break
                if max_events is not None and executed >= max_events:
                    raise RuntimeError(
                        f"SimEngine exceeded max_events={max_events}; "
                        "likely an event loop that never terminates"
                    )
                if (
                    self.wall_deadline is not None
                    and self._events_processed % WALL_DEADLINE_CHECK_EVERY == 0
                ):
                    self._check_wall_deadline()
                ev = heap.pop()
                if ev is None:  # pragma: no cover - peek_time guarantees one
                    break
                self._now = ev.time
                self._events_processed += 1
                ev.callback()
                executed += 1
            if until is not None and until > self._now:
                self._now = until
        finally:
            self._running = False
        return executed

    def run_while(
        self,
        cond: Callable[[], object],
        *,
        guard: Optional[int] = None,
    ) -> bool:
        """Drain events in one batched loop while ``cond()`` is truthy.

        The runtime's ``taskwait`` loops use this instead of calling
        :meth:`step` once per event: ``cond`` is re-evaluated between
        events (so a callback that satisfies the wait stops the drain
        immediately), and the wall-clock deadline is sampled per drained
        event at the same ordinals as :meth:`step`.

        Returns ``True`` when ``cond()`` went falsy, ``False`` when the
        queue drained first (the caller's deadlock case).  ``guard``
        reproduces the runtime's ``max_events`` safety valve: once the
        total processed-event count exceeds it, :class:`RuntimeError` is
        raised exactly as the stepped loop did.
        """
        heap = self._heap
        deadline_every = WALL_DEADLINE_CHECK_EVERY
        while cond():
            if (
                self.wall_deadline is not None
                and self._events_processed % deadline_every == 0
            ):
                self._check_wall_deadline()
            ev = heap.pop()
            if ev is None:
                return False
            self._now = ev.time
            self._events_processed += 1
            ev.callback()
            if guard is not None and self._events_processed > guard:
                raise RuntimeError(f"exceeded max_events={guard}")
        return True

    def _peek(self) -> Optional[Event]:
        """Return the next non-cancelled event without executing it."""
        return self._heap.peek()

    # ------------------------------------------------------------------
    # Introspection / reset
    # ------------------------------------------------------------------
    def reset(self) -> None:
        """Drop all pending events and rewind the clock to zero."""
        self._heap.clear()
        self._seq = 0
        self._now = 0.0
        self._events_processed = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SimEngine(now={self._now:.6f}, pending={len(self._heap)}, "
            f"processed={self._events_processed})"
        )


class RecurringEvent:
    """A self-rescheduling event series on a :class:`SimEngine`.

    At most one underlying :class:`Event` is pending at a time; each
    firing schedules the next one ``interval`` later unless the callback
    returned ``False`` or :meth:`cancel` was called.  ``fired`` counts
    completed firings.
    """

    def __init__(
        self,
        engine: SimEngine,
        interval: float,
        callback: Callable[[], object],
        *,
        kind: EventKind = EventKind.GENERIC,
        label: str = "",
        first: Optional[float] = None,
    ) -> None:
        self._engine = engine
        self.interval = interval
        self._callback = callback
        self._kind = kind
        self._label = label
        self.fired = 0
        self._active = True
        self._pending: Optional[Event] = None
        self._schedule_next(interval if first is None else first)

    @property
    def active(self) -> bool:
        return self._active

    def cancel(self) -> None:
        """Stop the series; the pending occurrence (if any) is cancelled."""
        self._active = False
        if self._pending is not None:
            self._pending.cancel()
            self._pending = None

    def _schedule_next(self, delay: float) -> None:
        self._pending = self._engine.schedule_after(
            delay, self._fire, kind=self._kind, label=self._label
        )

    def _fire(self) -> None:
        self._pending = None
        if not self._active:
            return
        keep = self._callback()
        self.fired += 1
        if keep is False or not self._active:
            self._active = False
            return
        self._schedule_next(self.interval)
