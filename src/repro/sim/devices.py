"""Compute-device models.

A :class:`Device` is a processing element able to run task versions
targeted at its :class:`DeviceKind` (the OmpSs ``device(smp)`` /
``device(cuda)`` clause).  Each device is attached to exactly one memory
space (all SMP cores share the host space; each GPU owns a private
space), and owns a :class:`~repro.sim.perfmodel.PerfModel` that the
simulation uses to produce task durations.

In OmpSs, each worker thread is devoted to one device; the runtime layer
(:mod:`repro.runtime.worker`) mirrors that 1:1 pairing.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Optional

from repro.sim.perfmodel import KernelCostModel, Params, PerfModel


class DeviceKind(Enum):
    """Architecture tag matching the OmpSs ``device(...)`` clause."""

    SMP = "smp"
    CUDA = "cuda"
    # The paper mentions Cell SPEs as a historical motivation; the kind
    # exists so machine descriptions for such systems can be written.
    SPE = "spe"

    @classmethod
    def parse(cls, name: "str | DeviceKind") -> "DeviceKind":
        if isinstance(name, DeviceKind):
            return name
        kind = _PARSE_CACHE.get(name)
        if kind is not None:
            return kind
        try:
            kind = cls(name.lower())
        except (ValueError, AttributeError):
            valid = ", ".join(k.value for k in cls)
            raise ValueError(f"unknown device kind {name!r}; expected one of: {valid}") from None
        _PARSE_CACHE[name] = kind
        return kind


#: parse() memo for string spellings ("smp", "SMP", "cuda", ...); parse
#: sits on the version-matching hot path (once per version × worker ×
#: dispatch) and ``str.lower`` + enum construction dominated it
_PARSE_CACHE: dict = {k.value: k for k in DeviceKind}

# per-member identity bit: kind-set intersections on the capability hot
# path reduce to an integer AND (Enum.__hash__ is a Python-level call,
# so frozenset operations over DeviceKind members show up in profiles)
for _i, _k in enumerate(DeviceKind):
    _k.mask = 1 << _i
del _i, _k


class Device:
    """A single processing element (one SMP core or one GPU).

    Parameters
    ----------
    name:
        Unique human-readable identifier, e.g. ``"smp0"`` or ``"gpu1"``.
    kind:
        Which ``device(...)`` clause values this device satisfies.
    memory_space:
        Identifier of the memory space the device computes from.  The
        memory subsystem resolves these to
        :class:`~repro.memory.space.MemorySpace` objects.
    perf:
        Cost models for the kernels this device can run.
    """

    def __init__(
        self,
        name: str,
        kind: DeviceKind,
        memory_space: str,
        perf: Optional[PerfModel] = None,
    ) -> None:
        self.name = name
        self.kind = DeviceKind.parse(kind)
        self.memory_space = memory_space
        self.perf = perf if perf is not None else PerfModel()

    def can_run_kind(self, kind: "str | DeviceKind") -> bool:
        """Whether this device satisfies the given ``device(...)`` clause."""
        return self.kind is DeviceKind.parse(kind)

    def register_kernel(self, kernel: str, model: KernelCostModel) -> None:
        self.perf.register(kernel, model)

    def duration(self, kernel: str, data_bytes: int, params: Params) -> float:
        """Simulated execution time of one instance of ``kernel`` here."""
        return self.perf.duration(kernel, data_bytes, params)

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r}, space={self.memory_space!r})"


class SMPDevice(Device):
    """One host CPU core; computes from the shared host memory space."""

    def __init__(self, name: str, perf: Optional[PerfModel] = None,
                 memory_space: str = "host") -> None:
        super().__init__(name, DeviceKind.SMP, memory_space, perf)


class GPUDevice(Device):
    """One CUDA GPU with a private memory space and a DMA engine.

    ``dma_channels`` models how many transfers the GPU's copy engines can
    overlap at once (Fermi-class M2090s have two copy engines; with
    overlap disabled the runtime serialises transfers with compute).
    ``memory_bytes`` bounds the device cache managed by
    :mod:`repro.memory.cache`.
    """

    def __init__(
        self,
        name: str,
        perf: Optional[PerfModel] = None,
        memory_space: Optional[str] = None,
        memory_bytes: int = 6 * 1024**3,
        dma_channels: int = 2,
    ) -> None:
        if memory_bytes <= 0:
            raise ValueError("memory_bytes must be positive")
        if dma_channels < 1:
            raise ValueError("dma_channels must be >= 1")
        super().__init__(name, DeviceKind.CUDA, memory_space or name, perf)
        self.memory_bytes = memory_bytes
        self.dma_channels = dma_channels


@dataclass(frozen=True)
class DeviceStats:
    """Aggregate per-device accounting produced at the end of a run."""

    device: str
    tasks_run: int
    busy_time: float
    idle_time: float

    @property
    def utilisation(self) -> float:
        total = self.busy_time + self.idle_time
        return self.busy_time / total if total > 0 else 0.0
