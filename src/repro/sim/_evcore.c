/* Compiled event core for the repro simulator (REPRO_SIM_BACKEND=compiled).
 *
 * Drop-in replacements for repro.sim.engine.Event and EventHeap:
 *
 *   Event      — C struct holding (time, seq, kind, callback, label,
 *                cancelled, _heap, _handle) as raw fields; construction
 *                and cancellation never enter the interpreter.
 *   EventHeap  — binary heap of slot ids ordered by (time, seq) held in
 *                raw double/int64 arrays, next to free-listed payload
 *                slots holding the event objects.  No tuples are boxed
 *                anywhere; the ordering comparison is two C number
 *                compares.
 *
 * Semantics are pinned to the pure-Python reference:
 *   - push(event) reads event.time / event.seq, stores the event, and
 *     writes back event._heap / event._handle ((gen << 32) | slot);
 *   - cancellation is lazy: Event.cancel() sets event.cancelled and
 *     calls cancel_handle(handle), which only adjusts the live count
 *     (stale handles no-op via the per-slot generation counter, bumped
 *     on the first counted cancel so a double-cancel cannot count twice);
 *   - pop() skips cancelled/evicted payloads, recycles their slots,
 *     clears event._heap, and returns the event (None when drained);
 *   - peek_time()/peek() prune cancelled entries from the top.
 *
 * The heap accepts any object exposing the Event attribute protocol
 * (the pure-Python Event works), with a fast path when the payload is
 * this module's Event type.  The golden-trace suite
 * (tests/sim/test_trace_golden.py) asserts both backends produce
 * byte-identical traces; the hypothesis model test
 * (tests/sim/test_event_heap.py) runs the same operation sequences
 * against heapq.
 */
#define PY_SSIZE_T_CLEAN
#include <Python.h>
#include <structmember.h>
#include <stdio.h>
#include <string.h>

/* ------------------------------------------------------------------ */
/* Event                                                               */
/* ------------------------------------------------------------------ */

typedef struct {
    PyObject_HEAD
    double time;
    long long seq;
    PyObject *kind;
    PyObject *callback;
    PyObject *label;
    char cancelled;
    PyObject *heap;     /* exposed as _heap; NULL reads as None */
    long long handle;   /* exposed as _handle */
} EvEvent;

static PyTypeObject EvEventType;
static PyTypeObject EvHeapType;

typedef struct {
    PyObject_HEAD
    /* heap index: slot ids ordered by (tm[slot], sq[slot]) */
    Py_ssize_t hn;
    Py_ssize_t hcap;
    Py_ssize_t *hp;
    /* parallel payload slots (scap capacity, ns = high-water mark) */
    Py_ssize_t ns;
    Py_ssize_t scap;
    double *tm;
    long long *sq;
    long long *gen;
    PyObject **ev;
    Py_ssize_t *freel;
    Py_ssize_t nfree;
    Py_ssize_t live;
} EvHeap;

static PyObject *s_time;
static PyObject *s_seq;
static PyObject *s_cancelled;
static PyObject *s_heap_attr;
static PyObject *s_handle;
static PyObject *s_empty;

/* ------------------------------------------------------------------ */
/* Event implementation                                                */
/* ------------------------------------------------------------------ */

static PyObject *
evevent_new(PyTypeObject *type, PyObject *args, PyObject *kwds)
{
    static char *kwlist[] = {"time", "seq", "kind", "callback", "label",
                             "cancelled", NULL};
    double t;
    long long seq;
    PyObject *kind, *callback;
    PyObject *label = NULL;
    int cancelled = 0;
    EvEvent *self;

    if (!PyArg_ParseTupleAndKeywords(args, kwds, "dLOO|Op:Event", kwlist,
                                     &t, &seq, &kind, &callback, &label,
                                     &cancelled))
        return NULL;
    self = (EvEvent *)type->tp_alloc(type, 0);
    if (self == NULL)
        return NULL;
    self->time = t;
    self->seq = seq;
    Py_INCREF(kind);
    self->kind = kind;
    Py_INCREF(callback);
    self->callback = callback;
    if (label == NULL)
        label = s_empty;
    Py_INCREF(label);
    self->label = label;
    self->cancelled = (char)cancelled;
    self->heap = NULL;
    self->handle = -1;
    return (PyObject *)self;
}

static int
evevent_traverse(EvEvent *self, visitproc visit, void *arg)
{
    Py_VISIT(self->kind);
    Py_VISIT(self->callback);
    Py_VISIT(self->label);
    Py_VISIT(self->heap);
    return 0;
}

static int
evevent_tp_clear(EvEvent *self)
{
    Py_CLEAR(self->kind);
    Py_CLEAR(self->callback);
    Py_CLEAR(self->label);
    Py_CLEAR(self->heap);
    return 0;
}

static void
evevent_dealloc(EvEvent *self)
{
    PyObject_GC_UnTrack(self);
    evevent_tp_clear(self);
    Py_TYPE(self)->tp_free((PyObject *)self);
}

/* shared with the heap's generic path: cancelled as a C int (-1 error) */
static int
ev_cancelled(PyObject *e)
{
    PyObject *c;
    int truth;
    if (Py_TYPE(e) == &EvEventType)
        return ((EvEvent *)e)->cancelled != 0;
    c = PyObject_GetAttr(e, s_cancelled);
    if (c == NULL)
        return -1;
    truth = PyObject_IsTrue(c);
    Py_DECREF(c);
    return truth;
}

/* core of EventHeap.cancel_handle, shared with Event.cancel's fast path;
 * returns -1 on error */
static int
heap_cancel_handle(EvHeap *self, long long h)
{
    long long slot = h & 0xFFFFFFFFLL;
    if (slot >= 0 && slot < (long long)self->ns &&
        ((self->gen[slot] << 32) | slot) == h) {
        PyObject *e = self->ev[slot];
        if (e != NULL) {
            int c = ev_cancelled(e);
            if (c < 0)
                return -1;
            if (c) {
                /* invalidate the handle so a double-cancel cannot
                 * count twice (generations only ever increase) */
                self->gen[slot] += 1;
                self->live -= 1;
            }
        }
    }
    return 0;
}

static PyObject *
evevent_cancel(EvEvent *self, PyObject *Py_UNUSED(ignored))
{
    PyObject *h;
    self->cancelled = 1;
    h = self->heap;
    if (h != NULL && h != Py_None) {
        if (Py_TYPE(h) == &EvHeapType) {
            if (heap_cancel_handle((EvHeap *)h, self->handle) < 0)
                return NULL;
        } else {
            PyObject *r = PyObject_CallMethod(h, "cancel_handle", "L",
                                              self->handle);
            if (r == NULL)
                return NULL;
            Py_DECREF(r);
        }
    }
    Py_RETURN_NONE;
}

static PyObject *
evevent_richcompare(PyObject *a, PyObject *b, int op)
{
    double ta, tb;
    long long qa, qb;
    int lt;

    if (op != Py_LT || Py_TYPE(a) != &EvEventType)
        Py_RETURN_NOTIMPLEMENTED;
    ta = ((EvEvent *)a)->time;
    qa = ((EvEvent *)a)->seq;
    if (Py_TYPE(b) == &EvEventType) {
        tb = ((EvEvent *)b)->time;
        qb = ((EvEvent *)b)->seq;
    } else {
        /* mirror the pure Event.__lt__ tuple compare against any
         * object exposing .time / .seq */
        PyObject *o = PyObject_GetAttr(b, s_time);
        if (o == NULL)
            return NULL;
        tb = PyFloat_AsDouble(o);
        Py_DECREF(o);
        if (tb == -1.0 && PyErr_Occurred())
            return NULL;
        o = PyObject_GetAttr(b, s_seq);
        if (o == NULL)
            return NULL;
        qb = PyLong_AsLongLong(o);
        Py_DECREF(o);
        if (qb == -1 && PyErr_Occurred())
            return NULL;
    }
    lt = (ta < tb) || (ta == tb && qa < qb);
    if (lt)
        Py_RETURN_TRUE;
    Py_RETURN_FALSE;
}

static PyObject *
evevent_repr(EvEvent *self)
{
    char buf[80];
    PyObject *val, *vstr, *out;

    snprintf(buf, sizeof(buf), "Event(t=%.6f, seq=%lld, ",
             self->time, self->seq);
    val = PyObject_GetAttrString(self->kind, "value");
    if (val == NULL) {
        PyErr_Clear();
        Py_INCREF(self->kind);
        val = self->kind;
    }
    vstr = PyObject_Str(val);
    Py_DECREF(val);
    if (vstr == NULL)
        return NULL;
    out = PyUnicode_FromFormat("%s%U%s)", buf, vstr,
                               self->cancelled ? " cancelled" : "");
    Py_DECREF(vstr);
    return out;
}

static PyMemberDef evevent_members[] = {
    {"time", T_DOUBLE, offsetof(EvEvent, time), 0,
     "absolute simulated firing time"},
    {"seq", T_LONGLONG, offsetof(EvEvent, seq), 0,
     "insertion order (tie-break among equal times)"},
    {"kind", T_OBJECT_EX, offsetof(EvEvent, kind), 0, "EventKind"},
    {"callback", T_OBJECT_EX, offsetof(EvEvent, callback), 0,
     "zero-arg callable fired by the engine"},
    {"label", T_OBJECT_EX, offsetof(EvEvent, label), 0, "debug label"},
    {"cancelled", T_BOOL, offsetof(EvEvent, cancelled), 0,
     "skip this event when popped"},
    {"_heap", T_OBJECT, offsetof(EvEvent, heap), 0,
     "owning heap while stored (None otherwise)"},
    {"_handle", T_LONGLONG, offsetof(EvEvent, handle), 0,
     "slot handle within the owning heap"},
    {NULL, 0, 0, 0, NULL}
};

static PyMethodDef evevent_methods[] = {
    {"cancel", (PyCFunction)evevent_cancel, METH_NOARGS,
     "Mark the event as cancelled; it will be skipped when popped."},
    {NULL, NULL, 0, NULL}
};

static PyTypeObject EvEventType = {
    PyVarObject_HEAD_INIT(NULL, 0)
    .tp_name = "repro.sim._evcore.Event",
    .tp_basicsize = sizeof(EvEvent),
    .tp_dealloc = (destructor)evevent_dealloc,
    .tp_repr = (reprfunc)evevent_repr,
    .tp_flags = Py_TPFLAGS_DEFAULT | Py_TPFLAGS_HAVE_GC,
    .tp_doc = "A scheduled callback (compiled backend).",
    .tp_traverse = (traverseproc)evevent_traverse,
    .tp_clear = (inquiry)evevent_tp_clear,
    .tp_richcompare = evevent_richcompare,
    .tp_methods = evevent_methods,
    .tp_members = evevent_members,
    .tp_new = evevent_new,
};

/* ------------------------------------------------------------------ */
/* EventHeap storage growth                                            */
/* ------------------------------------------------------------------ */

#define EV_LESS(h, a, b) \
    ((h)->tm[a] < (h)->tm[b] || \
     ((h)->tm[a] == (h)->tm[b] && (h)->sq[a] < (h)->sq[b]))

static int
grow_heap_index(EvHeap *self)
{
    Py_ssize_t ncap = self->hcap ? self->hcap * 2 : 64;
    Py_ssize_t *hp = (Py_ssize_t *)PyMem_Realloc(self->hp, ncap * sizeof(Py_ssize_t));
    if (hp == NULL) {
        PyErr_NoMemory();
        return -1;
    }
    self->hp = hp;
    self->hcap = ncap;
    return 0;
}

static int
grow_slots(EvHeap *self)
{
    Py_ssize_t ncap = self->scap ? self->scap * 2 : 64;
    double *tm = (double *)PyMem_Realloc(self->tm, ncap * sizeof(double));
    if (tm == NULL) goto nomem;
    self->tm = tm;
    {
        long long *sq = (long long *)PyMem_Realloc(self->sq, ncap * sizeof(long long));
        if (sq == NULL) goto nomem;
        self->sq = sq;
    }
    {
        long long *gen = (long long *)PyMem_Realloc(self->gen, ncap * sizeof(long long));
        if (gen == NULL) goto nomem;
        self->gen = gen;
    }
    {
        PyObject **ev = (PyObject **)PyMem_Realloc(self->ev, ncap * sizeof(PyObject *));
        if (ev == NULL) goto nomem;
        self->ev = ev;
    }
    {
        Py_ssize_t *freel = (Py_ssize_t *)PyMem_Realloc(self->freel, ncap * sizeof(Py_ssize_t));
        if (freel == NULL) goto nomem;
        self->freel = freel;
    }
    self->scap = ncap;
    return 0;
nomem:
    PyErr_NoMemory();
    return -1;
}

/* ------------------------------------------------------------------ */
/* heap primitives                                                     */
/* ------------------------------------------------------------------ */

static void
sift_up(EvHeap *self, Py_ssize_t pos)
{
    Py_ssize_t *hp = self->hp;
    Py_ssize_t slot = hp[pos];
    while (pos > 0) {
        Py_ssize_t parent = (pos - 1) >> 1;
        Py_ssize_t pslot = hp[parent];
        if (!EV_LESS(self, slot, pslot))
            break;
        hp[pos] = pslot;
        pos = parent;
    }
    hp[pos] = slot;
}

static void
sift_down(EvHeap *self, Py_ssize_t pos)
{
    Py_ssize_t *hp = self->hp;
    Py_ssize_t n = self->hn;
    Py_ssize_t slot = hp[pos];
    for (;;) {
        Py_ssize_t child = 2 * pos + 1;
        if (child >= n)
            break;
        if (child + 1 < n && EV_LESS(self, hp[child + 1], hp[child]))
            child += 1;
        if (!EV_LESS(self, hp[child], slot))
            break;
        hp[pos] = hp[child];
        pos = child;
    }
    hp[pos] = slot;
}

/* Remove the root of the heap index (caller owns the payload). */
static void
pop_root(EvHeap *self)
{
    self->hn -= 1;
    if (self->hn > 0) {
        self->hp[0] = self->hp[self->hn];
        sift_down(self, 0);
    }
}

/* Take the payload out of a slot and recycle it; returns a strong
 * reference (or NULL for an already-evicted slot). */
static PyObject *
release_slot(EvHeap *self, Py_ssize_t slot)
{
    PyObject *e = self->ev[slot];
    self->ev[slot] = NULL;
    self->gen[slot] += 1;
    self->freel[self->nfree++] = slot;
    return e;
}

/* ------------------------------------------------------------------ */
/* EventHeap methods                                                   */
/* ------------------------------------------------------------------ */

static PyObject *
evheap_push(EvHeap *self, PyObject *event)
{
    double t;
    long long q;
    Py_ssize_t slot;
    long long handle;
    int fast = (Py_TYPE(event) == &EvEventType);

    if (fast) {
        t = ((EvEvent *)event)->time;
        q = ((EvEvent *)event)->seq;
    } else {
        PyObject *attr = PyObject_GetAttr(event, s_time);
        if (attr == NULL)
            return NULL;
        t = PyFloat_AsDouble(attr);
        Py_DECREF(attr);
        if (t == -1.0 && PyErr_Occurred())
            return NULL;
        attr = PyObject_GetAttr(event, s_seq);
        if (attr == NULL)
            return NULL;
        q = PyLong_AsLongLong(attr);
        Py_DECREF(attr);
        if (q == -1 && PyErr_Occurred())
            return NULL;
    }

    if (self->nfree > 0) {
        slot = self->freel[--self->nfree];
        self->gen[slot] += 1;
    } else {
        if (self->ns >= self->scap && grow_slots(self) < 0)
            return NULL;
        slot = self->ns++;
        self->gen[slot] = 0;
    }
    self->tm[slot] = t;
    self->sq[slot] = q;
    Py_INCREF(event);
    self->ev[slot] = event;

    handle = (self->gen[slot] << 32) | (long long)slot;
    if (fast) {
        EvEvent *e = (EvEvent *)event;
        Py_INCREF(self);
        Py_XSETREF(e->heap, (PyObject *)self);
        e->handle = handle;
    } else {
        PyObject *ho = PyLong_FromLongLong(handle);
        int rc;
        if (ho == NULL)
            goto fail;
        rc = PyObject_SetAttr(event, s_heap_attr, (PyObject *)self);
        if (rc == 0)
            rc = PyObject_SetAttr(event, s_handle, ho);
        Py_DECREF(ho);
        if (rc < 0)
            goto fail;
    }

    if (self->hn >= self->hcap && grow_heap_index(self) < 0)
        goto fail;
    self->hp[self->hn] = slot;
    self->hn += 1;
    sift_up(self, self->hn - 1);
    self->live += 1;
    Py_RETURN_NONE;

fail:
    /* roll the slot back so the store stays consistent */
    Py_CLEAR(self->ev[slot]);
    self->gen[slot] += 1;
    self->freel[self->nfree++] = slot;
    return NULL;
}

static PyObject *
evheap_pop(EvHeap *self, PyObject *Py_UNUSED(ignored))
{
    while (self->hn > 0) {
        Py_ssize_t slot = self->hp[0];
        PyObject *e;
        int c;
        pop_root(self);
        e = release_slot(self, slot);
        if (e == NULL)
            continue;
        c = ev_cancelled(e);
        if (c < 0) {
            Py_DECREF(e);
            return NULL;
        }
        if (c) {
            Py_DECREF(e);
            continue;
        }
        self->live -= 1;
        if (Py_TYPE(e) == &EvEventType) {
            Py_INCREF(Py_None);
            Py_XSETREF(((EvEvent *)e)->heap, Py_None);
        } else if (PyObject_SetAttr(e, s_heap_attr, Py_None) < 0) {
            Py_DECREF(e);
            return NULL;
        }
        return e;
    }
    Py_RETURN_NONE;
}

/* Prune cancelled entries off the top; afterwards hp[0] is live (or
 * the heap is empty).  Returns -1 on error, 0 otherwise. */
static int
prune_top(EvHeap *self)
{
    while (self->hn > 0) {
        Py_ssize_t slot = self->hp[0];
        PyObject *e = self->ev[slot];
        int c = 0;
        if (e != NULL) {
            c = ev_cancelled(e);
            if (c < 0)
                return -1;
        }
        if (e == NULL || c) {
            pop_root(self);
            Py_XDECREF(release_slot(self, slot));
            continue;
        }
        return 0;
    }
    return 0;
}

static PyObject *
evheap_peek_time(EvHeap *self, PyObject *Py_UNUSED(ignored))
{
    if (prune_top(self) < 0)
        return NULL;
    if (self->hn == 0)
        Py_RETURN_NONE;
    return PyFloat_FromDouble(self->tm[self->hp[0]]);
}

static PyObject *
evheap_peek(EvHeap *self, PyObject *Py_UNUSED(ignored))
{
    PyObject *e;
    if (prune_top(self) < 0)
        return NULL;
    if (self->hn == 0)
        Py_RETURN_NONE;
    e = self->ev[self->hp[0]];
    Py_INCREF(e);
    return e;
}

static PyObject *
evheap_cancel_handle(EvHeap *self, PyObject *arg)
{
    long long h = PyLong_AsLongLong(arg);
    if (h == -1 && PyErr_Occurred())
        return NULL;
    if (heap_cancel_handle(self, h) < 0)
        return NULL;
    Py_RETURN_NONE;
}

static PyObject *
evheap_clear(EvHeap *self, PyObject *Py_UNUSED(ignored))
{
    Py_ssize_t i;
    for (i = 0; i < self->ns; i++) {
        PyObject *e = self->ev[i];
        if (e != NULL) {
            self->ev[i] = NULL;
            if (Py_TYPE(e) == &EvEventType) {
                Py_INCREF(Py_None);
                Py_XSETREF(((EvEvent *)e)->heap, Py_None);
            } else if (PyObject_SetAttr(e, s_heap_attr, Py_None) < 0) {
                PyErr_Clear();
            }
            Py_DECREF(e);
        }
    }
    self->hn = 0;
    self->ns = 0;
    self->nfree = 0;
    self->live = 0;
    Py_RETURN_NONE;
}

static Py_ssize_t
evheap_len(EvHeap *self)
{
    return self->hn;
}

static PyObject *
evheap_get_live(EvHeap *self, void *Py_UNUSED(closure))
{
    return PyLong_FromSsize_t(self->live);
}

static PyObject *
evheap_get_slots(EvHeap *self, void *Py_UNUSED(closure))
{
    return PyLong_FromSsize_t(self->ns);
}

/* ------------------------------------------------------------------ */
/* EventHeap type plumbing                                             */
/* ------------------------------------------------------------------ */

static int
evheap_traverse(EvHeap *self, visitproc visit, void *arg)
{
    Py_ssize_t i;
    for (i = 0; i < self->ns; i++)
        Py_VISIT(self->ev[i]);
    return 0;
}

static int
evheap_tp_clear(EvHeap *self)
{
    Py_ssize_t i;
    for (i = 0; i < self->ns; i++)
        Py_CLEAR(self->ev[i]);
    self->hn = 0;
    self->ns = 0;
    self->nfree = 0;
    self->live = 0;
    return 0;
}

static void
evheap_dealloc(EvHeap *self)
{
    PyObject_GC_UnTrack(self);
    evheap_tp_clear(self);
    PyMem_Free(self->hp);
    PyMem_Free(self->tm);
    PyMem_Free(self->sq);
    PyMem_Free(self->gen);
    PyMem_Free(self->ev);
    PyMem_Free(self->freel);
    Py_TYPE(self)->tp_free((PyObject *)self);
}

static PyObject *
evheap_new(PyTypeObject *type, PyObject *args, PyObject *kwds)
{
    EvHeap *self;
    if ((args != NULL && PyTuple_GET_SIZE(args) != 0) ||
        (kwds != NULL && PyDict_GET_SIZE(kwds) != 0)) {
        PyErr_SetString(PyExc_TypeError, "EventHeap() takes no arguments");
        return NULL;
    }
    self = (EvHeap *)type->tp_alloc(type, 0);
    /* tp_alloc zeroes the struct: all pointers NULL, all counters 0 */
    return (PyObject *)self;
}

static PyMethodDef evheap_methods[] = {
    {"push", (PyCFunction)evheap_push, METH_O,
     "Insert an event; its (time, seq) must be unique."},
    {"pop", (PyCFunction)evheap_pop, METH_NOARGS,
     "Remove and return the earliest live event (None if empty)."},
    {"peek_time", (PyCFunction)evheap_peek_time, METH_NOARGS,
     "Earliest live event time without removing it (prunes cancelled)."},
    {"peek", (PyCFunction)evheap_peek, METH_NOARGS,
     "Earliest live event without removing it (prunes cancelled)."},
    {"cancel_handle", (PyCFunction)evheap_cancel_handle, METH_O,
     "Drop the payload of a still-stored event (stale handles no-op)."},
    {"clear", (PyCFunction)evheap_clear, METH_NOARGS,
     "Drop every stored event and reset the slot store."},
    {NULL, NULL, 0, NULL}
};

static PyGetSetDef evheap_getset[] = {
    {"live", (getter)evheap_get_live, NULL,
     "live (non-cancelled, not-yet-popped) events", NULL},
    {"slots", (getter)evheap_get_slots, NULL,
     "allocated slot count (high-water mark of concurrent events)", NULL},
    {NULL, NULL, NULL, NULL, NULL}
};

static PySequenceMethods evheap_as_sequence = {
    .sq_length = (lenfunc)evheap_len,
};

static PyTypeObject EvHeapType = {
    PyVarObject_HEAD_INIT(NULL, 0)
    .tp_name = "repro.sim._evcore.EventHeap",
    .tp_basicsize = sizeof(EvHeap),
    .tp_dealloc = (destructor)evheap_dealloc,
    .tp_as_sequence = &evheap_as_sequence,
    .tp_flags = Py_TPFLAGS_DEFAULT | Py_TPFLAGS_HAVE_GC,
    .tp_doc = "Array-backed event store (compiled backend).",
    .tp_traverse = (traverseproc)evheap_traverse,
    .tp_clear = (inquiry)evheap_tp_clear,
    .tp_methods = evheap_methods,
    .tp_getset = evheap_getset,
    .tp_new = evheap_new,
};

/* ------------------------------------------------------------------ */
/* module                                                              */
/* ------------------------------------------------------------------ */

static struct PyModuleDef evcore_module = {
    PyModuleDef_HEAD_INIT,
    .m_name = "_evcore",
    .m_doc = "Compiled event core for the repro simulator.",
    .m_size = -1,
};

PyMODINIT_FUNC
PyInit__evcore(void)
{
    PyObject *m;

    s_time = PyUnicode_InternFromString("time");
    s_seq = PyUnicode_InternFromString("seq");
    s_cancelled = PyUnicode_InternFromString("cancelled");
    s_heap_attr = PyUnicode_InternFromString("_heap");
    s_handle = PyUnicode_InternFromString("_handle");
    s_empty = PyUnicode_InternFromString("");
    if (s_time == NULL || s_seq == NULL || s_cancelled == NULL ||
        s_heap_attr == NULL || s_handle == NULL || s_empty == NULL)
        return NULL;

    if (PyType_Ready(&EvEventType) < 0)
        return NULL;
    if (PyType_Ready(&EvHeapType) < 0)
        return NULL;
    m = PyModule_Create(&evcore_module);
    if (m == NULL)
        return NULL;
    Py_INCREF(&EvEventType);
    if (PyModule_AddObject(m, "Event", (PyObject *)&EvEventType) < 0) {
        Py_DECREF(&EvEventType);
        Py_DECREF(m);
        return NULL;
    }
    Py_INCREF(&EvHeapType);
    if (PyModule_AddObject(m, "EventHeap", (PyObject *)&EvHeapType) < 0) {
        Py_DECREF(&EvHeapType);
        Py_DECREF(m);
        return NULL;
    }
    if (PyModule_AddIntConstant(m, "COMPILED", 1) < 0) {
        Py_DECREF(m);
        return NULL;
    }
    return m;
}
