"""Kernel cost models for simulated devices.

The paper's scheduler learns task durations from observation; it never
sees these models.  The models exist only so that the simulated machine
produces durations with the same *structure* as the MinoTauro node the
paper measured: a GPU dgemm on a 1024x1024 double tile is ~60x faster
than single-core CBLAS, PCIe moves ~6 GB/s, and so on.

A cost model maps ``(data_bytes, params)`` to a duration in seconds,
where ``params`` is the task instance's free-form work description
(e.g. ``{"n": 1024, "dtype_bytes": 8}``).  Models are deliberately tiny
and composable; calibrated constants live in :mod:`repro.sim.topology`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Mapping, Optional

import numpy as np

Params = Mapping[str, float]


class KernelCostModel:
    """Base class: maps a work description to a duration in seconds."""

    def duration(self, data_bytes: int, params: Params) -> float:
        raise NotImplementedError

    def __call__(self, data_bytes: int, params: Params) -> float:
        d = self.duration(data_bytes, params)
        if d < 0 or math.isnan(d):
            raise ValueError(f"{type(self).__name__} produced invalid duration {d}")
        return d


@dataclass(frozen=True)
class FixedCostModel(KernelCostModel):
    """A constant duration regardless of input size."""

    seconds: float

    def duration(self, data_bytes: int, params: Params) -> float:
        return self.seconds


@dataclass(frozen=True)
class AffineBytesCostModel(KernelCostModel):
    """``base + bytes / bandwidth`` — memory-bound kernels (streaming loops).

    ``bandwidth`` is in bytes/second and models the effective rate at
    which the kernel touches its working set; ``base`` is a fixed
    launch/loop overhead.
    """

    base: float
    bandwidth: float

    def __post_init__(self) -> None:
        if self.bandwidth <= 0:
            raise ValueError("bandwidth must be positive")

    def duration(self, data_bytes: int, params: Params) -> float:
        return self.base + data_bytes / self.bandwidth


@dataclass(frozen=True)
class GemmCostModel(KernelCostModel):
    """Dense matrix-multiply cost: ``2*m*n*k`` flops at a sustained rate.

    ``m``, ``n``, ``k`` come from the task's params (all default to
    ``params["n"]`` for square tiles).  ``launch_overhead`` models kernel
    launch / BLAS call overhead and keeps tiny tiles from looking free.
    """

    gflops: float
    launch_overhead: float = 0.0

    def __post_init__(self) -> None:
        if self.gflops <= 0:
            raise ValueError("gflops must be positive")

    def duration(self, data_bytes: int, params: Params) -> float:
        n = params.get("n")
        if n is None:
            raise KeyError("GemmCostModel requires params['n'] (tile dimension)")
        m = params.get("m", n)
        k = params.get("k", n)
        flops = 2.0 * m * n * k
        return self.launch_overhead + flops / (self.gflops * 1e9)


@dataclass(frozen=True)
class FlopsCostModel(KernelCostModel):
    """Explicit flop count (``params['flops']``) at a sustained GFLOP/s rate.

    Used for kernels whose arithmetic intensity doesn't fit the gemm
    shape: Cholesky panel factorisation (``n^3/3``), triangular solves
    (``n^3``), rank-k updates — the app computes the flop count, the
    model only divides by the rate.
    """

    gflops: float
    launch_overhead: float = 0.0

    def __post_init__(self) -> None:
        if self.gflops <= 0:
            raise ValueError("gflops must be positive")

    def duration(self, data_bytes: int, params: Params) -> float:
        flops = params.get("flops")
        if flops is None:
            raise KeyError("FlopsCostModel requires params['flops']")
        return self.launch_overhead + float(flops) / (self.gflops * 1e9)


@dataclass(frozen=True)
class TableCostModel(KernelCostModel):
    """Direct lookup: exact data-set size (bytes) -> duration.

    Sizes not present fall back to linear interpolation between the two
    nearest entries (or nearest-edge extrapolation).  Useful in tests and
    for replaying measured profiles.
    """

    table: Mapping[int, float]

    def __post_init__(self) -> None:
        if not self.table:
            raise ValueError("TableCostModel requires a non-empty table")

    def duration(self, data_bytes: int, params: Params) -> float:
        table = self.table
        if data_bytes in table:
            return table[data_bytes]
        keys = sorted(table)
        if data_bytes <= keys[0]:
            return table[keys[0]]
        if data_bytes >= keys[-1]:
            return table[keys[-1]]
        import bisect

        i = bisect.bisect_left(keys, data_bytes)
        lo, hi = keys[i - 1], keys[i]
        frac = (data_bytes - lo) / (hi - lo)
        return table[lo] + frac * (table[hi] - table[lo])


@dataclass(frozen=True)
class ScaledCostModel(KernelCostModel):
    """Wrap another model and scale its duration by a constant factor.

    Handy for deriving "this version is 60x slower on this device"
    relationships without re-deriving constants.
    """

    inner: KernelCostModel
    factor: float

    def __post_init__(self) -> None:
        if self.factor <= 0:
            raise ValueError("factor must be positive")

    def duration(self, data_bytes: int, params: Params) -> float:
        return self.inner.duration(data_bytes, params) * self.factor


class PerfModel:
    """Per-device table of kernel cost models plus deterministic jitter.

    ``noise_cv`` is the coefficient of variation of a multiplicative
    noise term drawn from a (clipped) normal distribution.  Real task
    durations vary run to run; the versioning scheduler's running-mean
    estimator exists precisely to smooth this out, so the simulation
    reproduces it — deterministically, from a seeded generator.
    """

    def __init__(
        self,
        kernels: Optional[Mapping[str, KernelCostModel]] = None,
        *,
        noise_cv: float = 0.0,
        seed: int = 0,
    ) -> None:
        if noise_cv < 0 or noise_cv >= 1.0:
            raise ValueError("noise_cv must be in [0, 1)")
        self._kernels: dict[str, KernelCostModel] = dict(kernels or {})
        self.noise_cv = noise_cv
        self._rng = np.random.default_rng(seed)

    def register(self, kernel: str, model: KernelCostModel) -> None:
        """Register (or replace) the cost model for ``kernel``."""
        self._kernels[kernel] = model

    def has_kernel(self, kernel: str) -> bool:
        return kernel in self._kernels

    def kernels(self) -> list[str]:
        return sorted(self._kernels)

    def model(self, kernel: str) -> KernelCostModel:
        """The registered cost model for ``kernel`` (KeyError if absent)."""
        try:
            return self._kernels[kernel]
        except KeyError:
            raise KeyError(f"no cost model registered for kernel {kernel!r}") from None

    def duration(self, kernel: str, data_bytes: int, params: Params) -> float:
        """Sample a duration for one execution of ``kernel``.

        Raises :class:`KeyError` if the kernel has no model on this
        device — the runtime treats that as "this device cannot run this
        version", which should have been caught earlier by the device
        clause.
        """
        try:
            model = self._kernels[kernel]
        except KeyError:
            raise KeyError(f"no cost model registered for kernel {kernel!r}") from None
        base = model(data_bytes, params)
        if self.noise_cv == 0.0:
            return base
        # Clip at 3 sigma and floor at 10% of nominal so durations stay
        # positive and the mean stays close to the model's value.
        factor = 1.0 + self.noise_cv * float(self._rng.standard_normal())
        factor = min(max(factor, 1.0 - 3 * self.noise_cv, 0.1), 1.0 + 3 * self.noise_cv)
        return base * factor
