"""Simulator tooling entry point: ``python -m repro.sim``.

Subcommands (flag style, composable with ``REPRO_SIM_BACKEND``):

``--build``
    Build the compiled event core with the system C compiler and print
    the artifact path.  CI's ``compiled-backend`` job runs this before
    the golden suite so build failures surface as their own step.

``--backend``
    Print the resolved backend name for the current environment
    (``pure`` or ``compiled``), building the extension if the request
    requires it.

``--profile [--workload NAME] [--top N]``
    cProfile one of the throughput-bench workloads (default the 16-node
    sharded matmul acceptance workload) and print the hottest frames by
    total time.  This is the supported way to find the next frame to
    flatten — see DESIGN.md §17.
"""

from __future__ import annotations

import argparse
import sys


def _bench_workloads():
    """The workload registry from benchmarks/bench_sim_throughput.py.

    Imported lazily by path so the profile entry works from a source
    checkout without installing the benchmarks as a package.
    """
    import importlib.util
    from pathlib import Path

    for parent in Path(__file__).resolve().parents:
        candidate = parent / "benchmarks" / "bench_sim_throughput.py"
        if candidate.exists():
            spec = importlib.util.spec_from_file_location(
                "bench_sim_throughput", candidate
            )
            assert spec is not None and spec.loader is not None
            mod = importlib.util.module_from_spec(spec)
            spec.loader.exec_module(mod)
            return mod.WORKLOADS
    raise SystemExit(
        "benchmarks/bench_sim_throughput.py not found; --profile requires "
        "a source checkout"
    )


def _cmd_build(verbose: bool) -> int:
    from repro.sim.evcore_build import EvcoreBuildError, build_evcore

    try:
        path = build_evcore(verbose=verbose)
    except EvcoreBuildError as exc:
        print(f"build failed: {exc}", file=sys.stderr)
        return 1
    print(path)
    return 0


def _cmd_backend() -> int:
    from repro.sim.backend import resolve

    print(resolve())
    return 0


def _cmd_profile(workload: str, top: int) -> int:
    import cProfile
    import pstats

    workloads = _bench_workloads()
    fn = workloads.get(workload)
    if fn is None:
        print(f"unknown workload {workload!r}; one of {sorted(workloads)}",
              file=sys.stderr)
        return 2
    from repro.sim.backend import resolve

    print(f"[profiling {workload} on the {resolve()} backend]", file=sys.stderr)
    prof = cProfile.Profile()
    prof.enable()
    events, tasks = fn()
    prof.disable()
    stats = pstats.Stats(prof, stream=sys.stdout)
    stats.sort_stats("tottime").print_stats(top)
    print(f"[{events} events, {tasks} tasks]", file=sys.stderr)
    return 0


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(
        prog="python -m repro.sim", description=__doc__.splitlines()[0]
    )
    ap.add_argument("--build", action="store_true",
                    help="build the compiled event core and print its path")
    ap.add_argument("--backend", action="store_true",
                    help="print the resolved event-core backend")
    ap.add_argument("--profile", action="store_true",
                    help="cProfile a throughput workload")
    ap.add_argument("--workload", default="matmul16-sharded",
                    help="workload for --profile (see bench_sim_throughput)")
    ap.add_argument("--top", type=int, default=25,
                    help="frames to print for --profile (default 25)")
    ap.add_argument("--verbose", action="store_true",
                    help="echo the compiler command during --build")
    args = ap.parse_args(argv)

    if args.build:
        return _cmd_build(args.verbose)
    if args.backend:
        return _cmd_backend()
    if args.profile:
        return _cmd_profile(args.workload, args.top)
    ap.print_help()
    return 2


if __name__ == "__main__":
    raise SystemExit(main())
