"""Perturbed cost models — workload drift and interference injection.

The versioning scheduler "never stops learning ... and easily adapts to
application's behaviour, even if it changes over the whole execution"
(§IV-B).  Testing that claim needs kernels whose cost *changes*: these
wrappers inject phase shifts (thermal throttling, a co-scheduled job
appearing), periodic spikes (OS jitter, garbage collection) and gradual
drift into any base cost model.

All wrappers are deterministic functions of the call count, so perturbed
simulations stay reproducible.
"""

from __future__ import annotations

from typing import Sequence

from repro.sim.perfmodel import KernelCostModel, Params


class PhaseShiftCostModel(KernelCostModel):
    """Switch between cost models after fixed call counts.

    ``phases`` is a list of ``(model, calls)`` pairs; the last phase's
    call budget is ignored (it runs forever).  Models an abrupt change:
    a GPU starting to throttle, a contending job arriving or leaving.
    """

    def __init__(self, phases: Sequence[tuple[KernelCostModel, int]]) -> None:
        if not phases:
            raise ValueError("PhaseShiftCostModel needs at least one phase")
        for _, calls in phases[:-1]:
            if calls <= 0:
                raise ValueError("phase call budgets must be positive")
        self.phases = list(phases)
        self.calls = 0

    def duration(self, data_bytes: int, params: Params) -> float:
        self.calls += 1
        remaining = self.calls
        for model, budget in self.phases[:-1]:
            if remaining <= budget:
                return model(data_bytes, params)
            remaining -= budget
        return self.phases[-1][0](data_bytes, params)


class SpikeCostModel(KernelCostModel):
    """Every ``every_n``-th call costs ``factor`` times more.

    Models periodic interference (OS jitter, page migration, GC pauses).
    """

    def __init__(self, inner: KernelCostModel, every_n: int, factor: float) -> None:
        if every_n < 1:
            raise ValueError("every_n must be >= 1")
        if factor <= 0:
            raise ValueError("factor must be positive")
        self.inner = inner
        self.every_n = every_n
        self.factor = factor
        self.calls = 0

    def duration(self, data_bytes: int, params: Params) -> float:
        self.calls += 1
        base = self.inner(data_bytes, params)
        if self.calls % self.every_n == 0:
            return base * self.factor
        return base


class DriftCostModel(KernelCostModel):
    """Each call multiplies the base cost by ``(1 + rate)`` more.

    Models gradual degradation; ``rate`` may be negative (warm-up).
    ``max_factor`` clamps the cumulative drift so long runs stay sane.
    """

    def __init__(
        self,
        inner: KernelCostModel,
        rate_per_call: float,
        max_factor: float = 100.0,
    ) -> None:
        if max_factor <= 0:
            raise ValueError("max_factor must be positive")
        self.inner = inner
        self.rate = rate_per_call
        self.max_factor = max_factor
        self.calls = 0

    def duration(self, data_bytes: int, params: Params) -> float:
        factor = min(max((1.0 + self.rate) ** self.calls, 1.0 / self.max_factor),
                     self.max_factor)
        self.calls += 1
        return self.inner(data_bytes, params) * factor
