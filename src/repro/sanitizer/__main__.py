"""``python -m repro.sanitizer`` — lint task directives in a source tree.

Exit status: 0 when no error-severity findings, 1 otherwise, 2 on usage
errors.  ``--list-codes`` documents every diagnostic the sanitizer (CLI
*and* runtime analyses) can emit.
"""

from __future__ import annotations

import argparse
import sys

from repro.sanitizer.diagnostics import CODES, Severity, format_diagnostics
from repro.sanitizer.lint import lint_paths


def _list_codes() -> str:
    width = max(len(c) for c in CODES)
    return "\n".join(f"{code:<{width}}  {desc}" for code, desc in sorted(CODES.items()))


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.sanitizer",
        description="Static directive lint for @task/@target declarations.",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to lint (directories are walked for *.py)",
    )
    parser.add_argument(
        "--list-codes",
        action="store_true",
        help="print every diagnostic code with its meaning and exit",
    )
    parser.add_argument(
        "-q",
        "--quiet",
        action="store_true",
        help="suppress the summary line (findings are still printed)",
    )
    args = parser.parse_args(argv)

    if args.list_codes:
        print(_list_codes())
        return 0
    if not args.paths:
        parser.print_usage(sys.stderr)
        print("error: no paths given (or use --list-codes)", file=sys.stderr)
        return 2

    try:
        diags = lint_paths(args.paths)
    except OSError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    if diags:
        print(format_diagnostics(diags))
    n_err = sum(1 for d in diags if d.severity is Severity.ERROR)
    if not args.quiet:
        n_warn = len(diags) - n_err
        print(
            f"sanitizer: {n_err} error(s), {n_warn} warning(s)"
            if diags
            else "sanitizer: clean"
        )
    return 1 if n_err else 0


if __name__ == "__main__":
    raise SystemExit(main())
