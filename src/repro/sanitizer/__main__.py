"""``python -m repro.sanitizer`` — static analysis of a source tree.

Modes
-----
* default — the classic directive lint (SAN-L*),
* ``--static`` — the full static pass: directive lint, AST effect
  inference (SAN-S00x) and scheduler-contract lint (SAN-S01x) with
  combined waiver accounting,
* ``--protocol`` — additionally run the bounded protocol model checker
  (SAN-P00x) over the shipped NotificationRouter (no paths required).

Exit status: 0 when no error-severity findings (warnings alone do not
fail; ``--strict`` promotes them), 1 when errors (or strict-promoted
warnings) remain, 2 on usage errors.  ``--json`` prints findings as a
JSON document for tooling; ``--baseline FILE`` filters findings accepted
in a previous ``--write-baseline FILE`` run.  ``--list-codes`` documents
every diagnostic the sanitizer (CLI *and* runtime analyses) can emit.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.sanitizer.diagnostics import CODES, Severity, format_diagnostics
from repro.sanitizer.lint import lint_paths


def _list_codes() -> str:
    width = max(len(c) for c in CODES)
    return "\n".join(f"{code:<{width}}  {desc}" for code, desc in sorted(CODES.items()))


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.sanitizer",
        description="Static analysis for the OmpSs reproduction source tree.",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to analyse (directories are walked for *.py)",
    )
    parser.add_argument(
        "--static",
        action="store_true",
        help="run the full static pass (directive lint + effect inference "
        "+ scheduler-contract lint)",
    )
    parser.add_argument(
        "--protocol",
        action="store_true",
        help="also model-check the cluster notification protocol "
        "(implies --static; paths become optional)",
    )
    parser.add_argument(
        "--small",
        action="store_true",
        help="with --protocol: only the quick scenarios (pre-commit budget)",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="exit 1 on warnings too, not just errors",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        dest="as_json",
        help="print findings as a JSON document instead of text",
    )
    parser.add_argument(
        "--baseline",
        metavar="FILE",
        help="filter findings recorded in this baseline file",
    )
    parser.add_argument(
        "--write-baseline",
        metavar="FILE",
        help="write current findings to FILE as the new baseline and exit 0",
    )
    parser.add_argument(
        "--list-codes",
        action="store_true",
        help="print every diagnostic code with its meaning and exit",
    )
    parser.add_argument(
        "-q",
        "--quiet",
        action="store_true",
        help="suppress the summary line (findings are still printed)",
    )
    return parser


def main(argv: "list[str] | None" = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_codes:
        print(_list_codes())
        return 0
    if not args.paths and not args.protocol:
        parser.print_usage(sys.stderr)
        print(
            "error: no paths given (or use --protocol / --list-codes)",
            file=sys.stderr,
        )
        return 2

    try:
        if args.static or args.protocol:
            from repro.sanitizer.static import check_static

            diags = check_static(
                args.paths, protocol=args.protocol, small=args.small
            )
        else:
            diags = lint_paths(args.paths)
    except OSError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    if args.write_baseline:
        from repro.sanitizer.static import write_baseline

        n = write_baseline(diags, args.write_baseline)
        if not args.quiet:
            print(f"sanitizer: wrote {n} baseline entries to "
                  f"{args.write_baseline}")
        return 0

    if args.baseline:
        from repro.sanitizer.static import apply_baseline, load_baseline

        try:
            baseline = load_baseline(args.baseline)
        except (OSError, ValueError, json.JSONDecodeError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        diags = apply_baseline(diags, baseline, baseline_path=args.baseline)

    n_err = sum(1 for d in diags if d.severity is Severity.ERROR)
    n_warn = sum(1 for d in diags if d.severity is Severity.WARNING)

    if args.as_json:
        print(json.dumps(
            {
                "findings": [d.as_dict() for d in diags],
                "errors": n_err,
                "warnings": n_warn,
            },
            indent=2,
        ))
    else:
        if diags:
            print(format_diagnostics(diags))
        if not args.quiet:
            print(
                f"sanitizer: {n_err} error(s), {n_warn} warning(s)"
                if diags
                else "sanitizer: clean"
            )
    if n_err:
        return 1
    if args.strict and n_warn:
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
