"""Trace invariant checking (the SAN-T* family).

Two entry points:

* :func:`check_trace` — validates any :class:`~repro.sim.trace.Trace`
  in isolation: per-worker interval overlap (SAN-T001), optional
  task-before-dependence ordering given explicit dependence pairs
  (SAN-T002), quarantined/dead-worker execution (SAN-T004, windows
  derived from the trace's own ``quarantine``/``readmit``/
  ``worker-down`` records), straggler-detection follow-up (SAN-T007),
  unique task completion (SAN-T008), cross-shard notification
  ordering (SAN-T009: a successor must not start before the first
  delivery of each of its logical notifications — retransmissions are
  grouped by the ``(successor, wire seq)`` meta) and release-protocol
  integrity (SAN-T010: a cluster task is released exactly once, and
  never on the strength of a notification that was dropped and never
  redelivered).  Usable on hand-built traces in tests.

* :func:`check_run` — validates a full :class:`RunResult`: everything
  above with dependence pairs derived from the run's DAG, plus
  transfer-completes-before-consumer-starts (SAN-T003), the versioning
  scheduler's λ-count consistency (SAN-T005) and run accounting
  (SAN-T006).

All comparisons tolerate ``eps`` of floating-point noise; the simulated
clock is exact event times, so violations found here are real logic
errors, not rounding.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Optional

from repro.sanitizer.diagnostics import Diagnostic

if TYPE_CHECKING:  # pragma: no cover
    from repro.runtime.runtime import RunResult
    from repro.sim.trace import Trace, TraceRecord

_EPS = 1e-9

#: categories that occupy a worker exclusively (serial resource);
#: ``spec-abort`` is the partial execution of a cancelled speculative
#: copy (or the straggling original it beat) — real busy time
_BUSY_CATEGORIES = ("task", "fault", "aborted", "spec-abort")


def _task_records(trace: "Trace") -> dict[int, "TraceRecord"]:
    """Map run-local task sequence number -> its completion record."""
    out: dict[int, "TraceRecord"] = {}
    for r in trace.by_category("task"):
        if r.meta:
            out[r.meta[0]] = r
    return out


# ----------------------------------------------------------------------
# SAN-T001 — per-worker interval overlap
# ----------------------------------------------------------------------
def _check_overlaps(trace: "Trace", eps: float) -> list[Diagnostic]:
    out: list[Diagnostic] = []
    for worker in trace.workers():
        if worker.startswith("link:"):
            continue  # DMA channels pipeline; links are checked elsewhere
        recs = sorted(
            (
                r
                for r in trace
                if r.worker == worker and r.category in _BUSY_CATEGORIES
            ),
            key=lambda r: (r.start, r.end),
        )
        for a, b in zip(recs, recs[1:], strict=False):
            if b.start < a.end - eps:
                out.append(Diagnostic(
                    code="SAN-T001",
                    message=(
                        f"worker {worker!r} runs two activities at once: "
                        f"{a.category} {a.label!r} [{a.start:.6g},{a.end:.6g}] "
                        f"overlaps {b.category} {b.label!r} "
                        f"[{b.start:.6g},{b.end:.6g}]"
                    ),
                    worker=worker,
                    task=b.label,
                ))
    return out


# ----------------------------------------------------------------------
# SAN-T002 — task starts before a dependence predecessor finishes
# ----------------------------------------------------------------------
def _check_dependence_order(
    trace: "Trace", deps: Iterable[tuple[int, int]], eps: float
) -> list[Diagnostic]:
    records = _task_records(trace)
    out: list[Diagnostic] = []
    seen: set[tuple[int, int]] = set()
    for pred, succ in deps:
        if (pred, succ) in seen:
            continue
        seen.add((pred, succ))
        a, b = records.get(pred), records.get(succ)
        if a is None or b is None:
            continue  # one side never completed (aborted run)
        if b.start < a.end - eps:
            out.append(Diagnostic(
                code="SAN-T002",
                message=(
                    f"task #{succ} ({b.label!r} on {b.worker}) started at "
                    f"{b.start:.6g} before its dependence predecessor "
                    f"#{pred} ({a.label!r} on {a.worker}) finished at "
                    f"{a.end:.6g}"
                ),
                task=b.label,
                worker=b.worker,
                meta=(pred, succ),
            ))
    return out


# ----------------------------------------------------------------------
# SAN-T004 — dead/quarantined workers executing tasks
# ----------------------------------------------------------------------
def _check_worker_windows(trace: "Trace", eps: float) -> list[Diagnostic]:
    # closed-off windows per worker: [start, end) during which no task
    # may *start*; inf = permanently down
    windows: dict[str, list[tuple[float, float, str]]] = {}
    open_quarantine: dict[str, float] = {}
    open_down: dict[str, float] = {}
    for r in trace.sorted():
        if r.category == "quarantine":
            open_quarantine[r.worker] = r.start
        elif r.category == "readmit":
            q = open_quarantine.pop(r.worker, None)
            if q is not None:
                windows.setdefault(r.worker, []).append((q, r.start, "quarantined"))
        elif r.category == "worker-down":
            open_down[r.worker] = r.start
        elif r.category == "worker-up":
            # a node rejoin revives its workers: the down window closes,
            # and any quarantine is wiped with the rest of their state
            d = open_down.pop(r.worker, None)
            if d is not None:
                windows.setdefault(r.worker, []).append((d, r.start, "dead"))
            q = open_quarantine.pop(r.worker, None)
            if q is not None:
                windows.setdefault(r.worker, []).append((q, r.start, "quarantined"))
    for worker, q in open_quarantine.items():
        windows.setdefault(worker, []).append((q, float("inf"), "quarantined"))
    for worker, d in open_down.items():
        windows.setdefault(worker, []).append((d, float("inf"), "dead"))

    out: list[Diagnostic] = []
    for r in trace.by_category("task"):
        for w0, w1, state in windows.get(r.worker, ()):
            if w0 - eps < r.start < w1 - eps:
                out.append(Diagnostic(
                    code="SAN-T004",
                    message=(
                        f"task {r.label!r} started at {r.start:.6g} on worker "
                        f"{r.worker!r} while it was {state} "
                        f"(window [{w0:.6g},{'∞' if w1 == float('inf') else f'{w1:.6g}'}))"
                    ),
                    worker=r.worker,
                    task=r.label,
                ))
    return out


# ----------------------------------------------------------------------
# SAN-T007 — straggler detections must be acted on
# ----------------------------------------------------------------------
def _check_straggler_followup(trace: "Trace") -> list[Diagnostic]:
    # "straggler" and the recovery it triggers ("speculate" launch or
    # "retry" after an abort) carry the same simulated timestamp, so the
    # ordering that matters is trace *insertion* order, which the runtime
    # guarantees (detection is recorded before the recovery action).
    out: list[Diagnostic] = []
    records = list(trace)
    for i, r in enumerate(records):
        if r.category != "straggler" or not r.meta:
            continue
        seq = r.meta[0]
        acted = any(
            s.category in ("speculate", "retry") and s.meta and s.meta[0] == seq
            for s in records[i + 1:]
        )
        if not acted:
            out.append(Diagnostic(
                code="SAN-T007",
                message=(
                    f"straggler detected for task #{seq} ({r.label!r} on "
                    f"{r.worker}) at {r.start:.6g} but no speculation "
                    f"launch or retry followed"
                ),
                worker=r.worker,
                task=r.label,
                meta=(seq,),
            ))
    return out


# ----------------------------------------------------------------------
# SAN-T008 — at most one completion per task
# ----------------------------------------------------------------------
def _check_unique_completion(trace: "Trace") -> list[Diagnostic]:
    # Speculative re-execution races an original against a copy: exactly
    # one side may retire the task ("task" record); the loser must be
    # withdrawn as "spec-abort".  Two completion records for one
    # run-local sequence number mean a cancelled loser also won.
    out: list[Diagnostic] = []
    seen: dict[int, "TraceRecord"] = {}
    for r in trace.by_category("task"):
        if not r.meta:
            continue
        seq = r.meta[0]
        first = seen.get(seq)
        if first is None:
            seen[seq] = r
            continue
        out.append(Diagnostic(
            code="SAN-T008",
            message=(
                f"task #{seq} completed more than once: {first.label!r} on "
                f"{first.worker} at {first.end:.6g} and {r.label!r} on "
                f"{r.worker} at {r.end:.6g}"
            ),
            worker=r.worker,
            task=r.label,
            meta=(seq,),
        ))
    return out


# ----------------------------------------------------------------------
# SAN-T009 — cross-shard successor starts before its notification lands
# ----------------------------------------------------------------------
#: categories whose record represents a notification actually arriving
#: at the successor's node (wire delivery, duplicate copy, local
#: delivery after migration, or crash-recovery self-clear)
_NOTIFY_DELIVERED = ("notify", "notify-dup", "notify-local", "notify-recover")


def _notify_groups(trace: "Trace") -> dict[tuple, list["TraceRecord"]]:
    """Delivered notification records grouped by *logical* message.

    The reliable protocol may transmit one logical notification several
    times (retransmits, duplicates); all transmissions share the meta
    ``(successor seq, wire seq)`` and form one group.  Legacy records
    with a bare ``(successor seq,)`` meta are each their own singleton
    group (pre-protocol behaviour).
    """
    groups: dict[tuple, list["TraceRecord"]] = {}
    singleton = 0
    for n in trace.sorted():
        if n.category not in _NOTIFY_DELIVERED or not n.meta:
            continue
        if len(n.meta) >= 2:
            key = (n.meta[0], n.meta[1])
        else:
            singleton += 1
            key = (n.meta[0], ("rec", singleton))
        groups.setdefault(key, []).append(n)
    return groups


def _check_notify_order(trace: "Trace", eps: float) -> list[Diagnostic]:
    # The cluster protocol releases a cross-shard successor only after
    # every logical notification addressed to it is *delivered*.  With
    # retransmission, the releasing delivery is the FIRST arrival of
    # each logical message — a late duplicate legitimately lands after
    # the successor started, so the check groups transmissions by
    # logical message and compares against the earliest delivery.
    records = _task_records(trace)
    out: list[Diagnostic] = []
    for key, recs in sorted(_notify_groups(trace).items(), key=lambda kv: repr(kv[0])):
        succ = records.get(key[0])
        if succ is None:
            continue
        first = min(recs, key=lambda n: n.end)
        if succ.start < first.end - eps:
            out.append(Diagnostic(
                code="SAN-T009",
                message=(
                    f"cross-shard successor #{key[0]} ({succ.label!r} on "
                    f"{succ.worker}) started at {succ.start:.6g} before its "
                    f"notification over {first.worker!r} was first delivered "
                    f"at {first.end:.6g}"
                ),
                task=succ.label,
                worker=succ.worker,
                meta=(key[0],),
            ))
    return out


# ----------------------------------------------------------------------
# SAN-T010 — a successor is released exactly once, and only by
# notifications that were actually delivered
# ----------------------------------------------------------------------
def _check_release_protocol(trace: "Trace", eps: float) -> list[Diagnostic]:
    # "release" point records (cluster runs) anchor the check: (a) each
    # successor is released at most once; (b) for every logical
    # notification addressed to a released successor, some transmission
    # was delivered no later than the release — a successor released on
    # the strength of a dropped-and-never-redelivered notification is
    # the protocol bug this invariant exists to catch.
    out: list[Diagnostic] = []
    releases: dict[int, "TraceRecord"] = {}
    for r in trace.by_category("release"):
        if not r.meta:
            continue
        seq = r.meta[0]
        first = releases.get(seq)
        if first is not None:
            out.append(Diagnostic(
                code="SAN-T010",
                message=(
                    f"task #{seq} ({r.label!r}) was released more than "
                    f"once: at {first.start:.6g} on {first.worker!r} and "
                    f"again at {r.start:.6g} on {r.worker!r}"
                ),
                task=r.label,
                worker=r.worker,
                meta=(seq,),
            ))
            continue
        releases[seq] = r
    if not releases:
        return out

    delivered = _notify_groups(trace)
    attempted: dict[tuple, "TraceRecord"] = {}
    for n in trace.sorted():
        if len(n.meta) < 2:
            continue
        if n.category in _NOTIFY_DELIVERED or n.category == "notify-drop":
            attempted.setdefault((n.meta[0], n.meta[1]), n)
    for key in sorted(attempted, key=repr):
        seq, mseq = key
        rel = releases.get(seq)
        if rel is None:
            continue  # never released (stalled run) — not this check's job
        recs = delivered.get(key)
        if recs is None:
            n = attempted[key]
            out.append(Diagnostic(
                code="SAN-T010",
                message=(
                    f"task #{seq} ({rel.label!r}) was released at "
                    f"{rel.start:.6g} but its notification (wire seq "
                    f"{mseq} over {n.worker!r}) was dropped and never "
                    f"redelivered"
                ),
                task=rel.label,
                worker=rel.worker,
                meta=(seq, mseq),
            ))
            continue
        first_end = min(r.end for r in recs)
        if first_end > rel.start + eps:
            out.append(Diagnostic(
                code="SAN-T010",
                message=(
                    f"task #{seq} ({rel.label!r}) was released at "
                    f"{rel.start:.6g} before its notification (wire seq "
                    f"{mseq}) was first delivered at {first_end:.6g}"
                ),
                task=rel.label,
                worker=rel.worker,
                meta=(seq, mseq),
            ))
    return out


# ----------------------------------------------------------------------
def check_trace(
    trace: "Trace",
    *,
    deps: Optional[Iterable[tuple[int, int]]] = None,
    eps: float = _EPS,
) -> list[Diagnostic]:
    """Validate a trace in isolation.

    ``deps`` is an optional iterable of ``(pred_seq, succ_seq)`` pairs —
    run-local task sequence numbers (``meta[0]`` of task records) where
    the predecessor must finish before the successor starts.
    """
    out = _check_overlaps(trace, eps)
    if deps is not None:
        out.extend(_check_dependence_order(trace, deps, eps))
    out.extend(_check_worker_windows(trace, eps))
    out.extend(_check_straggler_followup(trace))
    out.extend(_check_unique_completion(trace))
    out.extend(_check_notify_order(trace, eps))
    out.extend(_check_release_protocol(trace, eps))
    return out


# ----------------------------------------------------------------------
# SAN-T003 — input transfer completes after its consumer started
# ----------------------------------------------------------------------
def _check_transfer_order(result: "RunResult", eps: float) -> list[Diagnostic]:
    from repro.runtime.task import TaskState

    graph = result.graph
    if graph is None:
        return []
    space_of = {w.name: w.space for w in result.workers}
    # transfers grouped by (destination space, region label)
    transfers: dict[tuple[str, str], list] = {}
    for r in result.trace.by_category("transfer"):
        if not r.worker.startswith("link:") or "->" not in r.worker:
            continue
        dst = r.worker.split("->", 1)[1]
        transfers.setdefault((dst, r.label), []).append(r)

    out: list[Diagnostic] = []
    for t in graph.tasks():
        if t.state is not TaskState.FINISHED or t.chosen_worker is None:
            continue
        space = space_of.get(t.chosen_worker)
        if space is None:
            continue
        for region in {a.region.key: a.region for a in t.accesses if a.reads}.values():
            for rec in transfers.get((space, region.label), ()):
                # a copy already in flight at task start must have been
                # waited for; one issued later belongs to a later consumer
                if rec.start < t.start_time - eps and rec.end > t.start_time + eps:
                    out.append(Diagnostic(
                        code="SAN-T003",
                        message=(
                            f"input transfer of {region.label!r} into "
                            f"{space!r} completed at {rec.end:.6g}, after "
                            f"consumer {t.label!r} started at "
                            f"{t.start_time:.6g}"
                        ),
                        task=t.label,
                        region=region.label,
                        worker=t.chosen_worker,
                    ))
    return out


# ----------------------------------------------------------------------
# SAN-T005 — versioning λ-count consistency
# ----------------------------------------------------------------------
def _check_lambda_counts(result: "RunResult") -> list[Diagnostic]:
    sched = result.scheduler_state
    table = getattr(sched, "table", None)
    dispatches = getattr(sched, "group_dispatches", None)
    lam = getattr(sched, "lam", None)
    if table is None or dispatches is None or lam is None or result.graph is None:
        return []
    # a mid-run change of the runnable-version set (dead or quarantined
    # worker) legitimately lets a group graduate with an under-sampled
    # version; the invariant is only sharp on fault-free runs
    if any(not w.alive or w.quarantined_until is not None for w in result.workers):
        return []
    if getattr(result.resilience, "quarantines", 0):
        return []

    defs = {t.name: t.definition for t in result.graph.tasks()}
    kinds = {k for w in result.workers for k in (w.device.kind,)}
    # warm-started schedulers graduate on learning *credit* (live
    # executions plus policy-capped preloaded history), not raw counts;
    # use the scheduler's own accounting when it exposes it so preloaded
    # runs validate clean
    credit = getattr(sched, "learning_credit", None)
    out: list[Diagnostic] = []
    for (task_name, size_key), counters in sorted(
        dispatches.items(), key=lambda kv: (kv[0][0], repr(kv[0][1]))
    ):
        if counters.get("reliable", 0) == 0:
            continue
        definition = defs.get(task_name)
        if definition is None:
            continue
        names = [
            v.name
            for v in definition.versions
            if any(k in kinds for k in v.device_kinds)
        ]
        group = None
        for g in table.version_set(task_name).groups():
            if g.size_key == size_key:
                group = g
                break
        if group is None:
            continue
        def _credit(name: str) -> int:
            if credit is not None:
                return credit(group, name)
            return group.executions(name)

        short = [n for n in names if _credit(n) < lam]
        if short:
            detail = ", ".join(
                f"{n}: {_credit(n)}"
                + (
                    f" (preloaded {group.profile(n).preloaded})"
                    if getattr(group.profile(n), "preloaded", 0)
                    else ""
                )
                for n in short
            )
            out.append(Diagnostic(
                code="SAN-T005",
                message=(
                    f"task {task_name!r} size group {size_key!r} received "
                    f"{counters['reliable']} reliable-phase dispatch(es) "
                    f"but version(s) have less than λ={lam} learning credit "
                    f"({detail})"
                ),
                task=task_name,
                meta=(size_key, tuple(short)),
            ))
    return out


# ----------------------------------------------------------------------
# SAN-T006 — run accounting
# ----------------------------------------------------------------------
def _check_accounting(result: "RunResult") -> list[Diagnostic]:
    n_records = len(result.trace.by_category("task"))
    n_finish = len(result.finish_order)
    n_done = result.tasks_completed
    n_worker = int(sum(s.get("tasks_run", 0) for s in result.worker_stats.values()))
    counts = {
        "tasks_completed": n_done,
        "finish_order": n_finish,
        "task trace records": n_records,
        "worker tasks_run": n_worker,
    }
    if len(set(counts.values())) > 1:
        detail = ", ".join(f"{k}={v}" for k, v in counts.items())
        return [Diagnostic(
            code="SAN-T006",
            message=f"run accounting mismatch: {detail}",
            meta=(n_done, n_finish, n_records, n_worker),
        )]
    return []


# ----------------------------------------------------------------------
def check_run(result: "RunResult", *, eps: float = _EPS) -> list[Diagnostic]:
    """All trace invariants of one finished run (SAN-T001..T008)."""
    deps: list[tuple[int, int]] = []
    if result.graph is not None and result.local_ids:
        ids = result.local_ids
        for e in result.graph.edges:
            if e.src in ids and e.dst in ids:
                deps.append((ids[e.src], ids[e.dst]))
    out = check_trace(result.trace, deps=deps, eps=eps)
    out.extend(_check_transfer_order(result, eps))
    out.extend(_check_lambda_counts(result))
    out.extend(_check_accounting(result))
    return out


def validate_run(result: "RunResult") -> list[Diagnostic]:
    """Every applicable sanitizer check over one run: trace invariants,
    aliasing findings and (when recorded) dynamic race analysis."""
    out = check_run(result)
    if result.graph is not None:
        out.extend(result.graph.alias_diagnostics)
        if result.recorder is not None:
            out.extend(result.recorder.diagnostics())
        from repro.sanitizer.races import check_happens_before

        out.extend(check_happens_before(result.graph, recorder=result.recorder))
    return out


__all__ = ["check_trace", "check_run", "validate_run"]
