"""Waiver comments shared by every static analysis.

A finding is waived by putting ``# san-ignore: <CODE>[, <CODE>...]`` (or
``# san-ignore: all``) on the reported line.  This module is the single
implementation of waiver parsing, application, and — new with the static
pass — *unused-waiver* detection: a waiver that suppresses nothing is
itself reported (SAN-L005), so dead waivers cannot silently mask future
findings on the same line.

Unused-waiver accounting is scoped to the analyses that actually ran:
a lint-only pass (``lint_paths``) only judges waivers whose code list is
entirely SAN-L, while the full static driver (``check_static``) judges
every waiver it saw.  A waiver naming codes outside the running analysis
set is never reported as unused by that pass.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.sanitizer.diagnostics import Diagnostic, Severity

WAIVE_TOKEN = "san-ignore"

_WAIVE_RE = re.compile(r"#\s*san-ignore\s*:?\s*(?P<codes>[A-Za-z0-9_,\-\s]*)")
_CODE_RE = re.compile(r"SAN-[A-Z]\d{3}")


@dataclass
class Waiver:
    """One ``# san-ignore`` comment found in a source file."""

    file: str
    line: int
    #: waived codes; empty means ``all``
    codes: frozenset[str]
    raw: str = ""
    used: bool = field(default=False, compare=False)

    def covers(self, code: str) -> bool:
        return not self.codes or code in self.codes


def parse_waiver(text: str) -> "frozenset[str] | None":
    """The waived code set of one source line, or None when unwaived.

    An empty frozenset means ``all`` (waive every code on the line).
    """
    m = _WAIVE_RE.search(text)
    if m is None:
        return None
    spec = m.group("codes")
    codes = frozenset(_CODE_RE.findall(spec))
    if codes:
        return codes
    # ": all" spelling, or a bare token (kept for backward compat)
    return frozenset()


def scan_waivers(path: str, lines: Sequence[str]) -> list[Waiver]:
    """Every waiver comment in one file's source lines.

    Tokenizes rather than regex-scanning the raw lines so that prose
    *describing* the waiver syntax (docstrings, string literals) is not
    mistaken for a waiver.
    """
    out: list[Waiver] = []
    src = "".join(t if t.endswith("\n") else t + "\n" for t in lines)
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(src).readline))
    except (tokenize.TokenError, IndentationError, SyntaxError):
        return out
    for tok in tokens:
        if tok.type != tokenize.COMMENT or WAIVE_TOKEN not in tok.string:
            continue
        codes = parse_waiver(tok.string)
        if codes is not None:
            out.append(Waiver(
                file=path, line=tok.start[0], codes=codes,
                raw=tok.string.strip(),
            ))
    return out


def apply_waivers(
    diags: Iterable[Diagnostic], waivers: Sequence[Waiver]
) -> list[Diagnostic]:
    """Drop waived diagnostics, marking the waivers that fired as used."""
    index: dict[tuple[str, int], list[Waiver]] = {}
    for w in waivers:
        index.setdefault((w.file, w.line), []).append(w)
    kept: list[Diagnostic] = []
    for d in diags:
        if d.file is None or d.line is None:
            kept.append(d)
            continue
        hit = False
        for w in index.get((d.file, d.line), ()):
            if w.covers(d.code):
                w.used = True
                hit = True
        if not hit:
            kept.append(d)
    return kept


def unused_waiver_diagnostics(
    waivers: Sequence[Waiver], *, code_prefixes: "tuple[str, ...] | None" = None
) -> list[Diagnostic]:
    """SAN-L005 findings for waivers that suppressed nothing.

    ``code_prefixes`` restricts judgement to waivers whose code list
    falls entirely inside the analyses that ran (e.g. ``("SAN-L",)`` for
    a lint-only pass); ``None`` judges every waiver.  ``all`` waivers
    are only judged when no restriction is active (a lint-only pass
    cannot know whether an ``all`` waiver shields a SAN-S finding).
    """
    out: list[Diagnostic] = []
    for w in waivers:
        if w.used:
            continue
        if code_prefixes is not None:
            if not w.codes:  # "all": undecidable under a partial pass
                continue
            if not all(c.startswith(code_prefixes) for c in w.codes):
                continue
        what = ", ".join(sorted(w.codes)) if w.codes else "all"
        out.append(Diagnostic(
            code="SAN-L005",
            message=(
                f"waiver for {what} suppresses nothing on this line; "
                "remove the stale # san-ignore comment"
            ),
            severity=Severity.WARNING,
            file=w.file,
            line=w.line,
        ))
    return out
