"""Dependence-race detection: actual accesses vs. declared clauses.

Two complementary analyses:

1. **Access recording** (:class:`AccessRecorder`) — when the runtime is
   configured with ``record_accesses=True`` and executes real NumPy
   kernels, every task body runs against *tracked* views of its array
   arguments.  Reads are observed through ufunc participation and
   ``__getitem__``; writes through ``__setitem__``, ufunc ``out=``
   targets *and* a before/after content digest (which catches writes the
   view tracking cannot see).  The recorder then diffs what the body did
   against the task's declared ``inputs/outputs/inouts`` clauses:

   * an undeclared write is **SAN-R001** — the dependence graph never
     built the WAR/WAW edges protecting that region,
   * an undeclared read is **SAN-R002** — no RAW edge orders the read
     after the region's producer.

   Both are task-level data races in the OmpSs sense: the program's
   result depends on scheduling.

2. **Happens-before checking** (:func:`check_happens_before`) — over a
   *completed* run: for every pair of tasks touching overlapping regions
   with at least one write, there must be a dependence path between them
   in the task DAG.  A conflicting pair with no path is a CONFIRMED race
   (**SAN-R010**): the scheduler was free to run them in either order.
   The check runs over the declared accesses by default and over the
   union of declared + recorded accesses when a recorder is supplied, so
   an undeclared access found by (1) is re-confirmed against the DAG.

Recording is best-effort by design (a body may read through interfaces
NumPy cannot intercept); it produces no false positives: every reported
access really happened.
"""

from __future__ import annotations

import hashlib
from typing import TYPE_CHECKING, Hashable, Iterable, Optional

import numpy as np

from repro.runtime.dataregion import AccessKind, DataRegion, region_of
from repro.sanitizer.diagnostics import Diagnostic

if TYPE_CHECKING:  # pragma: no cover
    from repro.runtime.dependences import DependenceGraph
    from repro.runtime.task import TaskInstance

#: digest at most this many bytes per array (strided sample beyond it)
_DIGEST_LIMIT = 1 << 20


class _Watch:
    """Mutable read/write flags for one array argument of one call."""

    __slots__ = ("read", "written")

    def __init__(self) -> None:
        self.read = False
        self.written = False


class TrackedArray(np.ndarray):
    """ndarray view that reports reads/writes to a :class:`_Watch`.

    Views derived from a tracked array (slices, reshapes) stay tracked —
    they alias the same buffer; arrays that do not share memory drop the
    watch so writes to fresh results are not misattributed.
    """

    _watch: Optional[_Watch] = None

    def __array_finalize__(self, obj) -> None:
        watch = getattr(obj, "_watch", None)
        if watch is not None and obj is not None:
            try:
                if not np.may_share_memory(self, obj):
                    watch = None
            except TypeError:  # pragma: no cover - defensive
                watch = None
        self._watch = watch

    # -- element access -------------------------------------------------
    def __getitem__(self, item):
        if self._watch is not None:
            self._watch.read = True
        return super().__getitem__(item)

    def __setitem__(self, item, value) -> None:
        watch = self._watch
        if watch is not None:
            watch.written = True
        vwatch = getattr(value, "_watch", None)
        if vwatch is not None:
            vwatch.read = True
        # numpy routes basic-index assignment through __getitem__ on the
        # target; detach the watch so that does not count as a read
        self._watch = None
        try:
            super().__setitem__(item, value)
        finally:
            self._watch = watch

    # -- ufunc participation ---------------------------------------------
    def __array_ufunc__(self, ufunc, method, *inputs, **kwargs):
        out = kwargs.get("out", ())
        if not isinstance(out, tuple):
            out = (out,)
        for arr in inputs:
            watch = getattr(arr, "_watch", None)
            if watch is not None:
                watch.read = True
        for arr in out:
            watch = getattr(arr, "_watch", None)
            if watch is not None:
                watch.written = True
        # run the ufunc on the base ndarrays; results are plain arrays
        plain_inputs = tuple(
            i.view(np.ndarray) if isinstance(i, TrackedArray) else i for i in inputs
        )
        if out:
            kwargs["out"] = tuple(
                o.view(np.ndarray) if isinstance(o, TrackedArray) else o for o in out
            )
        return getattr(ufunc, method)(*plain_inputs, **kwargs)


def _digest(arr: np.ndarray) -> bytes:
    """Cheap deterministic content fingerprint of an array's buffer."""
    flat = np.ascontiguousarray(arr).view(np.uint8).reshape(-1)
    if flat.nbytes > _DIGEST_LIMIT:
        step = flat.nbytes // (_DIGEST_LIMIT // 2)
        flat = flat[:: max(1, step)].copy()
    h = hashlib.blake2b(digest_size=16)
    h.update(str(arr.shape).encode())
    h.update(flat.tobytes())
    return h.digest()


class RaceFinding:
    """Internal accumulator entry before rendering to a Diagnostic."""

    __slots__ = ("task", "version", "region", "declared", "read", "written")

    def __init__(self, task: str, version: str, region: str,
                 declared: Optional[AccessKind], read: bool, written: bool) -> None:
        self.task = task
        self.version = version
        self.region = region
        self.declared = declared
        self.read = read
        self.written = written

    def missing_kind(self) -> str:
        """The clause kind the declaration is missing."""
        if self.read and self.written:
            return "inout"
        if self.written:
            return "inout" if self.declared is AccessKind.INPUT else "output"
        return "input"


class AccessRecorder:
    """Observes the real reads/writes of task bodies executed in a run."""

    def __init__(self) -> None:
        #: (task name, version name, region key, missing kind) dedup
        self._seen: set[tuple] = set()
        self.findings: list[RaceFinding] = []
        #: task uid -> (region, read, written) actually observed
        self.observed: dict[int, list[tuple[DataRegion, bool, bool]]] = {}

    # ------------------------------------------------------------------
    def run_task(self, t: "TaskInstance") -> None:
        """Execute ``t``'s chosen body with access tracking in place."""
        version = t.chosen_version
        if version is None:
            raise RuntimeError(f"{t.label}: no version chosen yet")
        if version.fn is None:
            return
        watches: dict[Hashable, tuple[DataRegion, np.ndarray, _Watch, bytes]] = {}

        def wrap(obj):
            if isinstance(obj, np.ndarray) and not isinstance(obj, TrackedArray):
                region = region_of(obj)
                entry = watches.get(region.key)
                if entry is None:
                    entry = (region, obj, _Watch(), _digest(obj))
                    watches[region.key] = entry
                view = obj.view(TrackedArray)
                view._watch = entry[2]
                return view
            if isinstance(obj, tuple):
                return tuple(wrap(o) for o in obj)
            if isinstance(obj, list):
                return [wrap(o) for o in obj]
            return obj

        args = tuple(wrap(a) for a in t.args)
        kwargs = {k: wrap(v) for k, v in t.kwargs.items()}
        version.fn(*args, **kwargs)
        self._collect(t, watches)

    # ------------------------------------------------------------------
    def _collect(self, t: "TaskInstance", watches: dict) -> None:
        declared: dict[Hashable, AccessKind] = {
            a.region.key: a.kind for a in t.accesses
        }
        observed = []
        for key, (region, base, watch, before) in watches.items():
            written = watch.written or _digest(base) != before
            read = watch.read
            if read or written:
                observed.append((region, read, written))
            kind = declared.get(key)
            ok_read = (not read) or (kind is not None and kind.reads)
            ok_write = (not written) or (kind is not None and kind.writes)
            if ok_read and ok_write:
                continue
            finding = RaceFinding(
                task=t.name,
                version=t.chosen_version.name,  # type: ignore[union-attr]
                region=region.label,
                declared=kind,
                read=read and not (kind is not None and kind.reads),
                written=written and not (kind is not None and kind.writes),
            )
            dedup = (finding.task, finding.version, region.key, finding.missing_kind())
            if dedup not in self._seen:
                self._seen.add(dedup)
                self.findings.append(finding)
        if observed:
            self.observed[t.uid] = observed

    # ------------------------------------------------------------------
    def diagnostics(self) -> list[Diagnostic]:
        out = []
        for f in self.findings:
            declared = "undeclared" if f.declared is None else f"declared {f.declared.value}"
            if f.written:
                code = "SAN-R001"
                did = "wrote" if not f.read else "read and wrote"
            else:
                code = "SAN-R002"
                did = "read"
            out.append(Diagnostic(
                code=code,
                message=(
                    f"task {f.task!r} (version {f.version!r}) {did} region "
                    f"{f.region!r} which is {declared}; missing "
                    f"{f.missing_kind()!r} clause — the dependence graph is "
                    "racy"
                ),
                task=f.task,
                region=f.region,
                meta=(f.missing_kind(),),
            ))
        return out


# ----------------------------------------------------------------------
# Happens-before analysis over a completed DAG
# ----------------------------------------------------------------------
def _access_sets(
    graph: "DependenceGraph",
    recorder: Optional[AccessRecorder],
) -> dict[int, list[tuple[DataRegion, bool, bool]]]:
    """Per-task (region, reads, writes) — declared ∪ recorded."""
    out: dict[int, list[tuple[DataRegion, bool, bool]]] = {}
    for t in graph.tasks():
        merged: dict[Hashable, tuple[DataRegion, bool, bool]] = {}
        for a in t.accesses:
            prev = merged.get(a.region.key)
            merged[a.region.key] = (
                a.region,
                a.reads or (prev[1] if prev else False),
                a.writes or (prev[2] if prev else False),
            )
        if recorder is not None:
            for region, read, written in recorder.observed.get(t.uid, ()):
                prev = merged.get(region.key)
                merged[region.key] = (
                    region,
                    read or (prev[1] if prev else False),
                    written or (prev[2] if prev else False),
                )
        out[t.uid] = list(merged.values())
    return out


def check_happens_before(
    graph: "DependenceGraph",
    *,
    recorder: Optional[AccessRecorder] = None,
    max_findings: int = 50,
) -> list[Diagnostic]:
    """Confirm that every conflicting access pair is DAG-ordered.

    Conflicts are computed over region *overlap* (same key, or
    intersecting address intervals), so aliasing bugs surface here too.
    """
    tasks = sorted(graph.tasks(), key=lambda t: t.uid)
    if not tasks:
        return []
    pos = {t.uid: i for i, t in enumerate(tasks)}

    # transitive reachability as bitmasks over task positions: tasks are
    # submitted in uid order, so every edge goes forward in `pos`
    reach = [0] * len(tasks)
    for e in graph.edges:
        if e.src not in pos or e.dst not in pos:
            continue
        i, j = pos[e.src], pos[e.dst]
        if i > j:
            i, j = j, i
        reach[j] |= (1 << i)
    for j in range(len(tasks)):
        mask = reach[j]
        acc = mask
        while mask:
            low = mask & -mask
            acc |= reach[low.bit_length() - 1]
            mask ^= low
        reach[j] = acc

    accesses = _access_sets(graph, recorder)

    # bucket accessors per region key; then merge buckets whose regions'
    # address intervals overlap (aliased distinct keys)
    buckets: dict[Hashable, list[tuple[int, DataRegion, bool, bool]]] = {}
    for t in tasks:
        for region, reads, writes in accesses[t.uid]:
            buckets.setdefault(region.key, []).append((t.uid, region, reads, writes))

    groups: list[list[tuple[int, DataRegion, bool, bool]]] = []
    interval_keys: list[tuple[int, int, Hashable]] = []
    for key, entries in buckets.items():
        region = entries[0][1]
        if region.base is not None and region.length:
            interval_keys.append((region.base, region.base + region.length, key))
        groups.append(entries)
    # merge aliased buckets pairwise (rare; interval list is small)
    interval_keys.sort()
    merged_into: dict[Hashable, Hashable] = {}
    for (a0, a1, ka), (b0, b1, kb) in zip(interval_keys, interval_keys[1:], strict=False):
        if b0 < a1:  # overlapping neighbours
            merged_into[kb] = merged_into.get(ka, ka)
    if merged_into:
        by_key = {g[0][1].key: g for g in groups}
        for src, dst in merged_into.items():
            if src in by_key and dst in by_key and by_key[src] is not by_key[dst]:
                by_key[dst].extend(by_key[src])
                by_key[src] = by_key[dst]
        seen_ids: set[int] = set()
        deduped: list[list[tuple[int, DataRegion, bool, bool]]] = []
        for g in by_key.values():
            if id(g) not in seen_ids:
                seen_ids.add(id(g))
                deduped.append(g)
        groups = deduped

    out: list[Diagnostic] = []
    reported: set[tuple] = set()
    for entries in groups:
        entries.sort(key=lambda e: e[0])
        for i, (uid_a, reg_a, _, wr_a) in enumerate(entries):
            for uid_b, reg_b, rd_b, wr_b in entries[i + 1:]:
                if uid_a == uid_b or not (wr_a or wr_b):
                    continue
                if not reg_a.overlaps(reg_b):
                    continue
                if reach[pos[uid_b]] >> pos[uid_a] & 1:
                    continue
                ta, tb = graph.task(uid_a), graph.task(uid_b)
                dedup = (ta.name, tb.name, reg_a.key, reg_b.key)
                if dedup in reported:
                    continue
                reported.add(dedup)
                kinds = f"{'write' if wr_a else 'read'}/{'write' if wr_b else 'read'}"
                out.append(Diagnostic(
                    code="SAN-R010",
                    message=(
                        f"CONFIRMED race: tasks {ta.label!r} and {tb.label!r} "
                        f"access overlapping region(s) {reg_a.label!r}"
                        + (f"/{reg_b.label!r}" if reg_b.key != reg_a.key else "")
                        + f" ({kinds}) with no dependence path between them"
                    ),
                    task=ta.label,
                    region=reg_a.label,
                    meta=(tb.label, kinds),
                ))
                if len(out) >= max_findings:
                    return out
    return out


def declared_vs_actual(
    graph: "DependenceGraph", recorder: AccessRecorder
) -> list[Diagnostic]:
    """All dynamic-race diagnostics of one run (diff + happens-before)."""
    out = recorder.diagnostics()
    out.extend(check_happens_before(graph, recorder=recorder))
    return out


def summarize(diags: Iterable[Diagnostic]) -> dict[str, int]:
    """Count findings per code (handy for tests and reports)."""
    counts: dict[str, int] = {}
    for d in diags:
        counts[d.code] = counts.get(d.code, 0) + 1
    return counts


__all__ = [
    "AccessRecorder",
    "TrackedArray",
    "RaceFinding",
    "check_happens_before",
    "declared_vs_actual",
    "summarize",
]
