"""Task-graph sanitizer: correctness tooling for the OmpSs reproduction.

Six analyses, one diagnostic model:

* **Static directive lint** (:mod:`repro.sanitizer.lint`, SAN-L*) —
  AST inspection of ``@task``/``@target`` declarations: clause names
  missing from the signature, bodies writing inputs-only parameters,
  duplicate clause entries, ``implements=`` clause-set mismatches.
* **Effect inference** (:mod:`repro.sanitizer.static.effects`,
  SAN-S001..S005) — per-parameter read/write footprints inferred from
  task bodies (including calls and aliases) diffed against the declared
  clauses: undeclared writes, dead clauses, downgradable inouts,
  ``implements=`` effect disagreements, stale reads of outputs.
* **Scheduler-contract lint** (:mod:`repro.sanitizer.static.contracts`,
  SAN-S010..S013) — scheduler/cluster code mutating the trace or worker
  state it does not own, ``task_ready`` paths that can silently drop a
  task, raw ``uid`` leaking into labels/metadata.
* **Protocol model checking** (:mod:`repro.sanitizer.static.modelcheck`,
  SAN-P001..P004) — bounded exhaustive exploration of the cluster
  notification protocol under adversarial drop/duplicate/delay/crash
  schedules, with message-sequence-chart counterexamples.
* **Dependence-race detection** (:mod:`repro.sanitizer.races`, SAN-R*)
  — actual reads/writes of executed kernel bodies diffed against the
  declared clauses, plus a happens-before check over the completed DAG.
* **Trace invariant checking** (:mod:`repro.sanitizer.invariants`,
  SAN-T*) — per-worker overlap, dependence ordering, transfer ordering,
  quarantine/death windows, λ-count consistency, run accounting.

CLI: ``python -m repro.sanitizer [paths...]`` lints a source tree;
``--static`` adds effect inference and contract lint, ``--protocol``
adds the model-checking suite.  ``RunResult.validate()`` covers the
dynamic analyses (``static=True`` adds the effect pre-flight over the
run's task definitions).  Findings carry stable codes (see
:data:`repro.sanitizer.CODES`); a static finding can be waived with a
``# san-ignore: SAN-xxxx`` comment on the flagged line (stale waivers
are themselves reported as SAN-L005).
"""

from repro.sanitizer.diagnostics import (
    CODES,
    Diagnostic,
    SanitizerError,
    Severity,
    errors,
    format_diagnostics,
    raise_if_errors,
)
from repro.sanitizer.invariants import check_run, check_trace, validate_run
from repro.sanitizer.lint import lint_files, lint_paths
from repro.sanitizer.races import (
    AccessRecorder,
    check_happens_before,
    declared_vs_actual,
)
from repro.sanitizer.waivers import (
    Waiver,
    apply_waivers,
    scan_waivers,
    unused_waiver_diagnostics,
)

__all__ = [
    "CODES",
    "Diagnostic",
    "SanitizerError",
    "Severity",
    "errors",
    "format_diagnostics",
    "raise_if_errors",
    "check_run",
    "check_trace",
    "validate_run",
    "lint_files",
    "lint_paths",
    "AccessRecorder",
    "check_happens_before",
    "declared_vs_actual",
    "Waiver",
    "apply_waivers",
    "scan_waivers",
    "unused_waiver_diagnostics",
]
