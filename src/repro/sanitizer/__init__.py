"""Task-graph sanitizer: correctness tooling for the OmpSs reproduction.

Three analyses, one diagnostic model:

* **Static directive lint** (:mod:`repro.sanitizer.lint`, SAN-L*) —
  AST inspection of ``@task``/``@target`` declarations: clause names
  missing from the signature, bodies writing inputs-only parameters,
  duplicate clause entries, ``implements=`` clause-set mismatches.
* **Dependence-race detection** (:mod:`repro.sanitizer.races`, SAN-R*)
  — actual reads/writes of executed kernel bodies diffed against the
  declared clauses, plus a happens-before check over the completed DAG.
* **Trace invariant checking** (:mod:`repro.sanitizer.invariants`,
  SAN-T*) — per-worker overlap, dependence ordering, transfer ordering,
  quarantine/death windows, λ-count consistency, run accounting.

CLI: ``python -m repro.sanitizer [paths...]`` lints a source tree;
``RunResult.validate()`` covers the dynamic analyses.  Findings carry
stable codes (see :data:`repro.sanitizer.CODES`); a static finding can
be waived with a ``# san-ignore: SAN-Lxxx`` comment on the flagged line.
"""

from repro.sanitizer.diagnostics import (
    CODES,
    Diagnostic,
    SanitizerError,
    Severity,
    errors,
    format_diagnostics,
    raise_if_errors,
)
from repro.sanitizer.invariants import check_run, check_trace, validate_run
from repro.sanitizer.lint import lint_files, lint_paths
from repro.sanitizer.races import (
    AccessRecorder,
    check_happens_before,
    declared_vs_actual,
)

__all__ = [
    "CODES",
    "Diagnostic",
    "SanitizerError",
    "Severity",
    "errors",
    "format_diagnostics",
    "raise_if_errors",
    "check_run",
    "check_trace",
    "validate_run",
    "lint_files",
    "lint_paths",
    "AccessRecorder",
    "check_happens_before",
    "declared_vs_actual",
]
