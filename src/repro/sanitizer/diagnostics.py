"""Diagnostic model shared by every sanitizer analysis.

A :class:`Diagnostic` is one finding: a stable code (``SAN-L001``,
``SAN-R010``, ...), a severity, a human-readable message and whatever
location information the producing analysis has — a file/line for the
static lint, a task/region pair for the dynamic analyses.

The code registry below is the single source of truth for what each
code means; ``python -m repro.sanitizer --list-codes`` renders it.

This module deliberately imports nothing from the rest of the package so
runtime modules (e.g. the dependence graph's aliasing check) can create
diagnostics without import cycles.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Iterable, Optional


class Severity(Enum):
    ERROR = "error"      # soundness violation: racy DAG, broken invariant
    WARNING = "warning"  # suspicious but not provably unsound
    INFO = "info"        # advisory

    def __lt__(self, other: "Severity") -> bool:  # ERROR sorts first
        order = {Severity.ERROR: 0, Severity.WARNING: 1, Severity.INFO: 2}
        if not isinstance(other, Severity):
            return NotImplemented
        return order[self] < order[other]


#: Registry of every diagnostic code the sanitizer can emit.
CODES: dict[str, str] = {
    # -- static directive lint (SAN-Lxxx) ------------------------------
    "SAN-L001": "dependence clause names a parameter that is not in the "
                "task function's signature",
    "SAN-L002": "parameter is assigned/mutated in the task body but "
                "declared only in the inputs clause",
    "SAN-L003": "duplicate or conflicting clause entry (same parameter "
                "named twice, or by two different clauses)",
    "SAN-L004": "implements= version declares a clause set that disagrees "
                "with the main version (Table-I grouping would be unsound)",
    # -- dynamic dependence-race detection (SAN-Rxxx) ------------------
    "SAN-R001": "task body wrote a region not declared output/inout "
                "(task-level data race)",
    "SAN-R002": "task body read a region not declared input/inout "
                "(task-level data race)",
    "SAN-R003": "two distinct regions with overlapping address intervals "
                "entered the dependence graph (aliasing makes the DAG "
                "unsound)",
    "SAN-R010": "two tasks access overlapping regions, at least one "
                "writes, and no dependence path orders them (CONFIRMED "
                "race by happens-before analysis)",
    # -- trace invariant checking (SAN-Txxx) ---------------------------
    "SAN-T001": "two activity records overlap on one worker (a worker is "
                "a serial resource)",
    "SAN-T002": "a task started before one of its dependence "
                "predecessors finished",
    "SAN-T003": "an input transfer for a task completed after the "
                "consuming task had already started",
    "SAN-T004": "a dead or quarantined worker executed a task",
    "SAN-T005": "versioning-scheduler λ-count inconsistency: a size "
                "group received reliable-phase dispatches although some "
                "version has less than λ learning credit (recorded "
                "executions plus warm-start-policy-capped preloaded "
                "history)",
    "SAN-T006": "run accounting mismatch (completed-task counters, trace "
                "records and finish order disagree)",
    "SAN-T007": "a straggler detection was never acted on: no speculation "
                "launch or retry followed the straggler record",
    "SAN-T008": "a task completed more than once (a cancelled speculative "
                "loser must never also appear as a winner)",
    "SAN-T009": "a cross-shard successor started before its inter-node "
                "notification was delivered (the cluster protocol must "
                "hold it until every notification lands)",
    "SAN-T010": "cluster release-protocol violation: a task was released "
                "more than once, or on the strength of a notification "
                "that was dropped and never redelivered",
}


@dataclass(frozen=True)
class Diagnostic:
    """One sanitizer finding."""

    code: str
    message: str
    severity: Severity = Severity.ERROR
    #: static-lint location
    file: Optional[str] = None
    line: Optional[int] = None
    #: dynamic-analysis location
    task: Optional[str] = None
    region: Optional[str] = None
    worker: Optional[str] = None
    #: free-form extras (e.g. the missing clause kind for SAN-R001/2)
    meta: tuple = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if self.code not in CODES:
            raise ValueError(f"unknown diagnostic code {self.code!r}")

    def location(self) -> str:
        if self.file is not None:
            line = "?" if self.line is None else str(self.line)
            return f"{self.file}:{line}"
        parts = [p for p in (self.task, self.region, self.worker) if p]
        return " ".join(parts) if parts else "<run>"

    def render(self) -> str:
        return f"{self.location()}: {self.severity.value} {self.code}: {self.message}"

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.render()


class SanitizerError(AssertionError):
    """Raised by strict validation when error-severity findings exist.

    Subclasses :class:`AssertionError` so existing test idioms
    (``pytest.raises(AssertionError)``) treat sanitizer failures like
    any other broken invariant.
    """

    def __init__(self, diagnostics: "list[Diagnostic]") -> None:
        self.diagnostics = diagnostics
        lines = [d.render() for d in diagnostics]
        super().__init__(
            f"{len(diagnostics)} sanitizer finding(s):\n" + "\n".join(lines)
        )


def errors(diags: Iterable[Diagnostic]) -> list[Diagnostic]:
    """The error-severity subset of ``diags``."""
    return [d for d in diags if d.severity is Severity.ERROR]


def raise_if_errors(diags: Iterable[Diagnostic]) -> None:
    bad = errors(diags)
    if bad:
        raise SanitizerError(bad)


def format_diagnostics(diags: "list[Diagnostic]") -> str:
    """Render findings one per line, most severe first (stable)."""
    if not diags:
        return "no findings"
    ordered = sorted(diags, key=lambda d: (d.severity, d.code, d.location()))
    return "\n".join(d.render() for d in ordered)
