"""Diagnostic model shared by every sanitizer analysis.

A :class:`Diagnostic` is one finding: a stable code (``SAN-L001``,
``SAN-R010``, ...), a severity, a human-readable message and whatever
location information the producing analysis has — a file/line for the
static lint, a task/region pair for the dynamic analyses.

The code registry below is the single source of truth for what each
code means; ``python -m repro.sanitizer --list-codes`` renders it.

This module deliberately imports nothing from the rest of the package so
runtime modules (e.g. the dependence graph's aliasing check) can create
diagnostics without import cycles.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Iterable, Optional


class Severity(Enum):
    ERROR = "error"      # soundness violation: racy DAG, broken invariant
    WARNING = "warning"  # suspicious but not provably unsound
    INFO = "info"        # advisory

    def __lt__(self, other: "Severity") -> bool:  # ERROR sorts first
        order = {Severity.ERROR: 0, Severity.WARNING: 1, Severity.INFO: 2}
        if not isinstance(other, Severity):
            return NotImplemented
        return order[self] < order[other]


#: Registry of every diagnostic code the sanitizer can emit.
CODES: dict[str, str] = {
    # -- static directive lint (SAN-Lxxx) ------------------------------
    "SAN-L001": "dependence clause names a parameter that is not in the "
                "task function's signature",
    "SAN-L002": "parameter is assigned/mutated in the task body but "
                "declared only in the inputs clause",
    "SAN-L003": "duplicate or conflicting clause entry (same parameter "
                "named twice, or by two different clauses)",
    "SAN-L004": "implements= version declares a clause set that disagrees "
                "with the main version (Table-I grouping would be unsound)",
    "SAN-L005": "a # san-ignore waiver suppresses nothing (stale waiver; "
                "remove it so real findings cannot hide behind it)",
    # -- static effect inference (SAN-S00x) ----------------------------
    "SAN-S001": "task body writes a parameter not declared output/inout "
                "(undeclared write inferred through subscript stores, "
                "kernel calls or aliases; WAR/WAW edges are never built)",
    "SAN-S002": "dead clause: the declared dependence can never be "
                "exercised by the task body (no read for an input, no "
                "write for an output) — the DAG is over-constrained",
    "SAN-S003": "inout clause is downgradable: the body only reads "
                "(declare input) or only writes (declare output) the "
                "parameter, so the clause serializes more than needed",
    "SAN-S004": "implements= versions disagree on inferred effects: one "
                "version writes a parameter another version provably "
                "does not touch (the versions are not interchangeable)",
    "SAN-S005": "task body reads a parameter declared output-only (the "
                "value read is stale/undefined before the first write)",
    # -- scheduler-contract lint (SAN-S01x) ----------------------------
    "SAN-S010": "scheduler mutates trace state (reassigns, clears or "
                "edits records); schedulers may only append via "
                "trace.add — the trace is the sanitizer's evidence",
    "SAN-S011": "scheduler pokes worker runtime state directly (alive, "
                "queue, current, free_at, ...); state changes must go "
                "through the runtime",
    "SAN-S012": "a task_ready code path neither dispatches, pools nor "
                "delegates the ready task: the task would be silently "
                "dropped and the run would hang at taskwait",
    "SAN-S013": "process-global task uid emitted in a trace label/meta; "
                "use the run-local id (rt._local_ids) so identical runs "
                "produce identical traces (seeded-determinism contract)",
    # -- bounded protocol model checking (SAN-P00x) --------------------
    "SAN-P001": "notification protocol fired on_clear twice for one "
                "successor without an intervening send (double release)",
    "SAN-P002": "notification protocol deadlock: the system quiesced "
                "with a successor still waiting on undelivered "
                "notifications (the run would hang at taskwait)",
    "SAN-P003": "epoch fencing violated: a message from a crashed "
                "sender's dead incarnation was applied after the crash",
    "SAN-P004": "premature release: on_clear fired before every logical "
                "notification for the successor was delivered at least "
                "once (duplicate suppression is broken)",
    # -- dynamic dependence-race detection (SAN-Rxxx) ------------------
    "SAN-R001": "task body wrote a region not declared output/inout "
                "(task-level data race)",
    "SAN-R002": "task body read a region not declared input/inout "
                "(task-level data race)",
    "SAN-R003": "two distinct regions with overlapping address intervals "
                "entered the dependence graph (aliasing makes the DAG "
                "unsound)",
    "SAN-R010": "two tasks access overlapping regions, at least one "
                "writes, and no dependence path orders them (CONFIRMED "
                "race by happens-before analysis)",
    # -- trace invariant checking (SAN-Txxx) ---------------------------
    "SAN-T001": "two activity records overlap on one worker (a worker is "
                "a serial resource)",
    "SAN-T002": "a task started before one of its dependence "
                "predecessors finished",
    "SAN-T003": "an input transfer for a task completed after the "
                "consuming task had already started",
    "SAN-T004": "a dead or quarantined worker executed a task",
    "SAN-T005": "versioning-scheduler λ-count inconsistency: a size "
                "group received reliable-phase dispatches although some "
                "version has less than λ learning credit (recorded "
                "executions plus warm-start-policy-capped preloaded "
                "history)",
    "SAN-T006": "run accounting mismatch (completed-task counters, trace "
                "records and finish order disagree)",
    "SAN-T007": "a straggler detection was never acted on: no speculation "
                "launch or retry followed the straggler record",
    "SAN-T008": "a task completed more than once (a cancelled speculative "
                "loser must never also appear as a winner)",
    "SAN-T009": "a cross-shard successor started before its inter-node "
                "notification was delivered (the cluster protocol must "
                "hold it until every notification lands)",
    "SAN-T010": "cluster release-protocol violation: a task was released "
                "more than once, or on the strength of a notification "
                "that was dropped and never redelivered",
}


@dataclass(frozen=True)
class Diagnostic:
    """One sanitizer finding."""

    code: str
    message: str
    severity: Severity = Severity.ERROR
    #: static-lint location
    file: Optional[str] = None
    line: Optional[int] = None
    #: dynamic-analysis location
    task: Optional[str] = None
    region: Optional[str] = None
    worker: Optional[str] = None
    #: free-form extras (e.g. the missing clause kind for SAN-R001/2)
    meta: tuple = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if self.code not in CODES:
            raise ValueError(f"unknown diagnostic code {self.code!r}")

    def location(self) -> str:
        if self.file is not None:
            line = "?" if self.line is None else str(self.line)
            return f"{self.file}:{line}"
        parts = [p for p in (self.task, self.region, self.worker) if p]
        return " ".join(parts) if parts else "<run>"

    def render(self) -> str:
        return f"{self.location()}: {self.severity.value} {self.code}: {self.message}"

    def as_dict(self) -> dict:
        """JSON-serializable form (the ``--json`` CLI output)."""
        out: dict = {
            "code": self.code,
            "severity": self.severity.value,
            "message": self.message,
        }
        for key in ("file", "line", "task", "region", "worker"):
            value = getattr(self, key)
            if value is not None:
                out[key] = value
        if self.meta:
            out["meta"] = list(self.meta)
        return out

    def fingerprint(self) -> tuple:
        """Stable identity for baseline matching (line numbers drift, so
        the fingerprint is (code, file, first message line))."""
        head = self.message.split("\n", 1)[0]
        return (self.code, self.file or "", head)

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.render()


class SanitizerError(AssertionError):
    """Raised by strict validation when error-severity findings exist.

    Subclasses :class:`AssertionError` so existing test idioms
    (``pytest.raises(AssertionError)``) treat sanitizer failures like
    any other broken invariant.
    """

    def __init__(self, diagnostics: "list[Diagnostic]") -> None:
        self.diagnostics = diagnostics
        lines = [d.render() for d in diagnostics]
        super().__init__(
            f"{len(diagnostics)} sanitizer finding(s):\n" + "\n".join(lines)
        )


def errors(diags: Iterable[Diagnostic]) -> list[Diagnostic]:
    """The error-severity subset of ``diags``."""
    return [d for d in diags if d.severity is Severity.ERROR]


def raise_if_errors(diags: Iterable[Diagnostic]) -> None:
    bad = errors(diags)
    if bad:
        raise SanitizerError(bad)


def format_diagnostics(diags: "list[Diagnostic]") -> str:
    """Render findings one per line, most severe first (stable)."""
    if not diags:
        return "no findings"
    ordered = sorted(diags, key=lambda d: (d.severity, d.code, d.location()))
    return "\n".join(d.render() for d in ordered)
