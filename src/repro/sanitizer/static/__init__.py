"""The static analysis layer: effects, contracts, protocol model checking.

Three source-level analyses share one driver:

* :mod:`repro.sanitizer.static.effects` — AST effect inference of task
  bodies diffed against their declared clauses (SAN-S001..S005),
* :mod:`repro.sanitizer.static.contracts` — scheduler/cluster contract
  lint (SAN-S010..S013),
* :mod:`repro.sanitizer.static.modelcheck` — bounded exploration of the
  cluster notification protocol (SAN-P001..P004).

:func:`check_static` runs the first two together with the classic
directive lint (SAN-L*) over a file set, does *central* waiver
accounting (a ``# san-ignore`` that suppressed nothing anywhere in the
combined pass is reported as SAN-L005), and optionally appends the
protocol verification suite.

A **baseline** file records accepted findings by fingerprint so a gate
can be introduced into a tree with pre-existing findings: baselined
diagnostics are filtered out, and baseline entries that no longer match
anything are reported (as SAN-L005 warnings) so the file shrinks to
empty over time rather than fossilizing.
"""

from __future__ import annotations

import json
import os
from typing import Iterable, Optional, Sequence

from repro.sanitizer.diagnostics import Diagnostic, Severity
from repro.sanitizer.lint import (
    DirectiveLinter,
    _iter_py_files,
    collect_lint,
    collect_waivers,
)
from repro.sanitizer.static.contracts import (
    check_contract_files,
    check_contract_paths,
)
from repro.sanitizer.static.effects import (
    check_definitions,
    check_effect_paths,
    check_effects,
)
from repro.sanitizer.static.modelcheck import (
    Scenario,
    ablation_scenario,
    check_protocol,
    default_scenarios,
    explore,
    render_msc,
)
from repro.sanitizer.waivers import (
    apply_waivers,
    unused_waiver_diagnostics,
)

__all__ = [
    "check_static",
    "check_definitions",
    "check_effects",
    "check_effect_paths",
    "check_contract_files",
    "check_contract_paths",
    "check_protocol",
    "default_scenarios",
    "ablation_scenario",
    "explore",
    "render_msc",
    "Scenario",
    "load_baseline",
    "write_baseline",
    "apply_baseline",
]


def check_static(
    paths: Iterable[str],
    *,
    protocol: bool = False,
    small: bool = False,
) -> list[Diagnostic]:
    """Run every static analysis over the given files/directories.

    Directive lint, effect inference and contract lint findings are
    combined, waivers applied once across all of them, and unused
    waivers reported (full accounting: every code family ran, so a
    waiver that suppressed nothing is definitely stale).  With
    ``protocol`` the model-checking suite runs too (its findings are
    not waivable — they are properties of the shipped router, not of a
    source line).
    """
    files = _iter_py_files(paths)
    diags: list[Diagnostic] = []
    waivers = []
    if files:
        linter = DirectiveLinter(files)
        diags.extend(collect_lint(linter))
        diags.extend(check_effects(linter))
        diags.extend(check_contract_files(files))
        waivers = collect_waivers(linter)
    kept = apply_waivers(diags, waivers)
    kept.extend(unused_waiver_diagnostics(waivers))
    if protocol:
        kept.extend(check_protocol(small=small))
    kept.sort(key=lambda d: (d.file or "", d.line or 0, d.code))
    return kept


# ----------------------------------------------------------------------
# Baselines
# ----------------------------------------------------------------------
_BASELINE_VERSION = 1


def load_baseline(path: str) -> "set[tuple]":
    """Accepted-finding fingerprints from a baseline JSON file."""
    with open(path, encoding="utf-8") as fh:
        data = json.load(fh)
    if not isinstance(data, dict) or data.get("version") != _BASELINE_VERSION:
        raise ValueError(
            f"{path}: not a sanitizer baseline (expected version "
            f"{_BASELINE_VERSION})"
        )
    return {tuple(entry) for entry in data.get("entries", [])}


def write_baseline(diags: Sequence[Diagnostic], path: str) -> int:
    """Write the findings' fingerprints as a baseline; returns count."""
    entries = sorted({d.fingerprint() for d in diags})
    payload = {"version": _BASELINE_VERSION, "entries": [list(e) for e in entries]}
    tmp = f"{path}.tmp"
    with open(tmp, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    os.replace(tmp, path)
    return len(entries)


def apply_baseline(
    diags: Sequence[Diagnostic],
    baseline: "set[tuple]",
    *,
    baseline_path: Optional[str] = None,
) -> list[Diagnostic]:
    """Filter baselined findings; report entries that matched nothing.

    Stale baseline entries get a SAN-L005 warning (same code as stale
    waivers: both are suppressions that no longer suppress anything).
    """
    kept: list[Diagnostic] = []
    used: set[tuple] = set()
    for d in diags:
        fp = d.fingerprint()
        if fp in baseline:
            used.add(fp)
        else:
            kept.append(d)
    for fp in sorted(baseline - used):
        code, file, head = (tuple(fp) + ("", "", ""))[:3]
        kept.append(Diagnostic(
            code="SAN-L005",
            message=(
                f"baseline entry ({code}, {file!r}, {head!r}) matches no "
                "current finding; remove it from "
                f"{baseline_path or 'the baseline file'}"
            ),
            severity=Severity.WARNING,
            file=file or None,
        ))
    return kept
