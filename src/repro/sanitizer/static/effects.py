"""AST effect inference: what a task body *really* does to each parameter.

The directive lint (SAN-L*) checks the declared clauses against the
function signature and direct assignments; this module goes deeper and
infers a per-parameter **footprint** — reads, writes and region slices —
from the body's AST:

* subscript and attribute stores (``C[i] = ...``, ``C[:] = ...``),
* in-place arithmetic (``C += A @ B`` mutates a NumPy array),
* calls into functions defined in the scanned sources (effects are
  computed recursively and propagated through the call's argument map —
  ``kernels.gemm_tile(A, B, C)`` writes ``C`` because the kernel does),
* aliasing through simple assignment chains (``x = C`` then
  ``x[:] = 0`` writes ``C``; slices of NumPy arrays are views, so
  ``row = C[0]; row[:] = 0`` also writes ``C``),
* NumPy-style pure calls (``np.*``, builtins) read their arguments;
  an ``out=`` keyword is a write,
* anything unresolvable (unknown callee, method call on a parameter)
  taints the parameter with *may-read*/*may-write* so the dead-clause
  and downgrade checks stay conservative.

The footprint is then diffed against the declared clauses:

* **SAN-S001** (error) — undeclared write: the body writes a parameter
  not declared ``output``/``inout`` (beyond what SAN-L002 catches:
  through kernel calls and aliases, or on a parameter in no clause),
* **SAN-S002** (warning) — dead clause: a declared dependence the body
  can never exercise,
* **SAN-S003** (info) — ``inout`` downgradable to ``input``/``output``,
* **SAN-S004** (error) — ``implements=`` versions disagree on inferred
  effects (one writes a parameter another provably does not touch),
* **SAN-S005** (warning) — a parameter declared output-only is read.

Soundness caveats (documented in DESIGN.md §14): inference is
flow-insensitive (a write anywhere in the body counts, even dead
branches), aliases are tracked only through simple assignment chains,
and any escape (unknown call, method call, ``**kwargs``) suppresses the
*absence*-based findings (S002/S003/S004) for the affected parameter
while never suppressing a definite write (S001).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence

from repro.sanitizer.diagnostics import Diagnostic, Severity
from repro.sanitizer.lint import (
    CLAUSE_KINDS,
    DirectiveLinter,
    TaskDecl,
    _func_params,
)

#: methods assumed pure (reads only) when called on a parameter
_PURE_METHODS = frozenset({
    "mean", "sum", "min", "max", "std", "var", "all", "any", "copy",
    "item", "astype", "reshape", "transpose", "tolist", "trace", "dot",
    "conj", "flatten", "ravel", "nonzero", "argmax", "argmin", "round",
    "get", "keys", "values", "items", "count", "index", "diagonal",
})

#: builtins assumed pure when a parameter is an argument
_PURE_CALLABLES = frozenset({
    "len", "range", "enumerate", "zip", "sorted", "reversed", "min",
    "max", "abs", "sum", "float", "int", "bool", "str", "repr", "list",
    "tuple", "dict", "set", "frozenset", "iter", "next", "all", "any",
    "round", "divmod", "pow", "print", "isinstance", "issubclass",
    "hash", "id", "type", "map", "filter",
})

#: dotted-name prefixes of libraries whose functions read (never
#: mutate) their array arguments unless an ``out=`` keyword is given
_PURE_PREFIXES = ("np.", "numpy.", "math.", "scipy.")

#: numpy functions whose *first* argument is written
_NUMPY_WRITES_FIRST_ARG = frozenset({"copyto", "fill_diagonal", "put", "place"})


# ----------------------------------------------------------------------
# Footprints
# ----------------------------------------------------------------------
@dataclass
class ParamEffect:
    """Inferred footprint of one parameter."""

    #: slice repr ("" whole, "[:]", "[0]", "[...]", ".attr") ->
    #: (first line, evidence kind: load|call)
    reads: dict[str, tuple[int, str]] = field(default_factory=dict)
    #: slice repr -> (first line, evidence kind: store|aug|call|alias|del)
    writes: dict[str, tuple[int, str]] = field(default_factory=dict)
    may_read: bool = False
    may_write: bool = False

    def note_read(self, sl: str, line: int, kind: str = "load") -> None:
        self.reads.setdefault(sl, (line, kind))

    def note_write(self, sl: str, line: int, kind: str) -> None:
        self.writes.setdefault(sl, (line, kind))

    @property
    def is_read(self) -> bool:
        return bool(self.reads)

    @property
    def is_written(self) -> bool:
        return bool(self.writes)

    def write_kinds(self) -> set[str]:
        return {kind for _, kind in self.writes.values()}

    @property
    def has_direct_read(self) -> bool:
        """A load in the body itself (not propagated through a call).

        Call-propagated reads count as *uses* (for the dead-clause
        check) but are too weak an evidence for the stale-read warning:
        guard helpers like ``is_real(A, B, C)`` only inspect types.
        """
        return any(kind == "load" for _, kind in self.reads.values())

    def merge_callee(self, other: "ParamEffect", line: int) -> None:
        """Fold a callee parameter's footprint into this argument."""
        for sl in other.reads:
            self.note_read(sl, line, "call")
        for sl in other.writes:
            self.note_write(sl, line, "call")
        self.may_read = self.may_read or other.may_read
        self.may_write = self.may_write or other.may_write

    def render(self) -> str:
        parts = []
        if self.reads:
            parts.append("reads " + ",".join(_render_slices(self.reads)))
        if self.writes:
            parts.append("writes " + ",".join(_render_slices(self.writes)))
        if self.may_write:
            parts.append("may-write")
        elif self.may_read:
            parts.append("may-read")
        return " ".join(parts) if parts else "untouched"


def _render_slices(slices: Iterable[str]) -> list[str]:
    return sorted(s if s else "[*]" for s in slices)


@dataclass
class FunctionEffects:
    """Per-parameter footprints of one function definition."""

    params: list[str]
    vararg: Optional[str]
    effects: dict[str, ParamEffect]

    def effect(self, name: str) -> ParamEffect:
        return self.effects.setdefault(name, ParamEffect())


# ----------------------------------------------------------------------
# AST plumbing
# ----------------------------------------------------------------------
def _dotted(node: ast.expr) -> Optional[str]:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        base = _dotted(node.value)
        return None if base is None else f"{base}.{node.attr}"
    return None


def _slice_repr(node: ast.expr) -> str:
    if isinstance(node, ast.Constant):
        return f"[{node.value!r}]"
    if isinstance(node, ast.Slice) and node.lower is None and node.upper is None \
            and node.step is None:
        return "[:]"
    return "[...]"


def _access_root(node: ast.expr) -> tuple[Optional[str], str]:
    """(root name, slice repr) of an access expression.

    ``C`` -> ("C", ""); ``C[0]`` -> ("C", "[0]"); ``C[0][1]`` ->
    ("C", "[...]"); ``C.real`` -> ("C", ".real").
    """
    sl = ""
    depth = 0
    while True:
        if isinstance(node, ast.Subscript):
            sl = _slice_repr(node.slice) if depth == 0 else "[...]"
            depth += 1
            node = node.value
        elif isinstance(node, ast.Attribute):
            sl = f".{node.attr}" if depth == 0 else "[...]"
            depth += 1
            node = node.value
        elif isinstance(node, ast.Starred):
            node = node.value
        else:
            break
    if isinstance(node, ast.Name):
        return node.id, sl
    return None, sl


# ----------------------------------------------------------------------
# Analyzer
# ----------------------------------------------------------------------
class EffectAnalyzer:
    """Computes (and memoizes) :class:`FunctionEffects` for the function
    definitions of a set of parsed modules."""

    def __init__(self, functions: dict[str, list[ast.FunctionDef]]) -> None:
        self._functions = functions
        self._memo: dict[int, FunctionEffects] = {}
        self._in_progress: set[int] = set()

    # -- function lookup ------------------------------------------------
    def lookup(self, name: str) -> Optional[ast.FunctionDef]:
        candidates = self._functions.get(name, [])
        if not candidates:
            return None
        sigs = {tuple(_func_params(c)) for c in candidates}
        return candidates[-1] if len(sigs) == 1 else None

    # -- entry point ----------------------------------------------------
    def effects_of(self, fn: "ast.FunctionDef | ast.Lambda") -> FunctionEffects:
        key = id(fn)
        cached = self._memo.get(key)
        if cached is not None:
            return cached
        a = fn.args
        params = [arg.arg for arg in (*a.posonlyargs, *a.args, *a.kwonlyargs)]
        vararg = a.vararg.arg if a.vararg else None
        names = params + ([vararg] if vararg else []) \
            + ([a.kwarg.arg] if a.kwarg else [])
        fe = FunctionEffects(
            params=params, vararg=vararg,
            effects={p: ParamEffect() for p in names},
        )
        if key in self._in_progress:  # recursion: stay conservative
            for p in fe.effects.values():
                p.may_read = p.may_write = True
            return fe
        self._in_progress.add(key)
        try:
            body = fn.body if isinstance(fn.body, list) else [ast.Expr(fn.body)]
            _BodyWalker(self, fe).walk(body)
            self._memo[key] = fe
        finally:
            self._in_progress.discard(key)
        return fe


class _BodyWalker:
    """One pass over a function body, in statement order.

    ``env`` maps local names to the parameter whose storage they alias
    (every parameter starts aliased to itself); rebinds to non-parameter
    values kill the alias.
    """

    def __init__(self, analyzer: EffectAnalyzer, fe: FunctionEffects) -> None:
        self.an = analyzer
        self.fe = fe
        self.env: dict[str, Optional[str]] = {p: p for p in fe.effects}

    # -- helpers --------------------------------------------------------
    def _param_of(self, name: Optional[str]) -> Optional[str]:
        if name is None:
            return None
        return self.env.get(name)

    def _resolve_access(self, node: ast.expr) -> tuple[Optional[str], str]:
        root, sl = _access_root(node)
        return self._param_of(root), sl

    # -- statements -----------------------------------------------------
    def walk(self, stmts: Sequence[ast.stmt]) -> None:
        for s in stmts:
            self.stmt(s)

    def stmt(self, s: ast.stmt) -> None:
        if isinstance(s, ast.Assign):
            self.expr(s.value)
            for tgt in s.targets:
                self._assign_target(tgt, s.value, s.lineno)
        elif isinstance(s, ast.AugAssign):
            self.expr(s.value)
            param, sl = self._resolve_access(s.target)
            if param is not None:
                # in-place arithmetic both reads and mutates the target
                self.fe.effect(param).note_read(sl, s.lineno)
                self.fe.effect(param).note_write(sl, s.lineno, "aug")
        elif isinstance(s, ast.AnnAssign):
            if s.value is not None:
                self.expr(s.value)
                self._assign_target(s.target, s.value, s.lineno)
        elif isinstance(s, ast.Delete):
            for tgt in s.targets:
                if isinstance(tgt, (ast.Subscript, ast.Attribute)):
                    param, sl = self._resolve_access(tgt)
                    if param is not None:
                        self.fe.effect(param).note_write(sl, s.lineno, "del")
                elif isinstance(tgt, ast.Name):
                    self.env[tgt.id] = None
        elif isinstance(s, ast.Expr):
            self.expr(s.value)
        elif isinstance(s, ast.Return):
            if s.value is not None:
                self.expr(s.value)
        elif isinstance(s, (ast.If, ast.While)):
            self.expr(s.test)
            self.walk(s.body)
            self.walk(s.orelse)
        elif isinstance(s, ast.For):
            self.expr(s.iter)
            # iterating a parameter yields views/elements of its storage
            iter_param, _ = self._resolve_access(s.iter)
            self._bind_loop_target(s.target, iter_param)
            self.walk(s.body)
            self.walk(s.orelse)
        elif isinstance(s, ast.With):
            for item in s.items:
                self.expr(item.context_expr)
                if item.optional_vars is not None and isinstance(
                    item.optional_vars, ast.Name
                ):
                    param, _ = self._resolve_access(item.context_expr)
                    self.env[item.optional_vars.id] = param
            self.walk(s.body)
        elif isinstance(s, ast.Try):
            self.walk(s.body)
            for h in s.handlers:
                self.walk(h.body)
            self.walk(s.orelse)
            self.walk(s.finalbody)
        elif isinstance(s, (ast.Raise, ast.Assert)):
            for child in ast.iter_child_nodes(s):
                if isinstance(child, ast.expr):
                    self.expr(child)
        elif isinstance(s, (ast.FunctionDef, ast.AsyncFunctionDef)):
            # a nested def capturing a parameter may do anything with it
            for node in ast.walk(s):
                if isinstance(node, ast.Name):
                    param = self._param_of(node.id)
                    if param is not None:
                        eff = self.fe.effect(param)
                        eff.may_read = eff.may_write = True
        else:
            for child in ast.iter_child_nodes(s):
                if isinstance(child, ast.expr):
                    self.expr(child)
                elif isinstance(child, ast.stmt):
                    self.stmt(child)

    def _bind_loop_target(self, tgt: ast.expr, iter_param: Optional[str]) -> None:
        if isinstance(tgt, ast.Name):
            self.env[tgt.id] = iter_param
        elif isinstance(tgt, (ast.Tuple, ast.List)):
            for el in tgt.elts:
                self._bind_loop_target(el, iter_param)

    def _assign_target(self, tgt: ast.expr, value: ast.expr, line: int) -> None:
        if isinstance(tgt, (ast.Tuple, ast.List)):
            for el in tgt.elts:
                self._assign_target(el, value, line)
            return
        if isinstance(tgt, ast.Name):
            # rebind: the name now aliases whatever the value aliases
            param, _ = self._resolve_access(value)
            self.env[tgt.id] = param
            return
        param, sl = self._resolve_access(tgt)
        if param is not None:
            root, _ = _access_root(tgt)
            kind = "store" if root == param else "alias"
            self.fe.effect(param).note_write(sl, line, kind)
        # only the index expressions of a store target are reads — the
        # stored-into name itself is not (C[i] = x never reads C's data)
        node: ast.expr = tgt
        while isinstance(node, (ast.Subscript, ast.Attribute, ast.Starred)):
            if isinstance(node, ast.Subscript):
                self._note_plain_reads(node.slice)
            node = node.value

    # -- expressions ----------------------------------------------------
    def expr(self, e: Optional[ast.expr]) -> None:
        if e is None:
            return
        for node in ast.walk(e):
            if isinstance(node, ast.Call):
                self._call(node)
            elif isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load):
                param = self._param_of(node.id)
                if param is not None:
                    self.fe.effect(param).note_read("", node.lineno)
            elif isinstance(node, ast.Subscript) and isinstance(
                node.ctx, ast.Load
            ):
                param, sl = self._resolve_access(node)
                if param is not None:
                    self.fe.effect(param).note_read(sl, node.lineno)

    def _note_plain_reads(self, e: ast.expr) -> None:
        for node in ast.walk(e):
            if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load):
                param = self._param_of(node.id)
                if param is not None:
                    self.fe.effect(param).note_read("", node.lineno)

    def _call(self, call: ast.Call) -> None:
        """Propagate effects through one call site.

        The surrounding :meth:`expr` walk already records plain name
        reads inside the arguments; this adds writes and may-flags.
        """
        callee = _dotted(call.func)
        line = call.lineno

        # p.method(...): a method call on (an alias of) a parameter
        if isinstance(call.func, ast.Attribute):
            recv_param, _ = self._resolve_access(call.func.value)
            if recv_param is not None:
                eff = self.fe.effect(recv_param)
                eff.note_read("", line)
                if call.func.attr not in _PURE_METHODS:
                    eff.may_write = True
                return

        arg_params = [self._resolve_access(a) for a in call.args]
        kw_params = {
            k.arg: self._resolve_access(k.value)
            for k in call.keywords
            if k.arg is not None
        }
        # a parameter smuggled through **kwargs escapes unconditionally
        for k in call.keywords:
            if k.arg is None:
                param, _ = self._resolve_access(k.value)
                if param is not None:
                    eff = self.fe.effect(param)
                    eff.may_read = eff.may_write = True

        if callee is not None:
            tail = callee.rsplit(".", 1)[-1]
            # pure library calls: arguments are read, out= is written
            if callee in _PURE_CALLABLES or callee.startswith(_PURE_PREFIXES):
                if tail in _NUMPY_WRITES_FIRST_ARG and arg_params:
                    param, sl = arg_params[0]
                    if param is not None:
                        self.fe.effect(param).note_write(sl, line, "call")
                out = kw_params.get("out")
                if out is not None and out[0] is not None:
                    self.fe.effect(out[0]).note_write(out[1], line, "call")
                return
            fn = self.an.lookup(tail)
            if fn is not None:
                self._propagate(fn, call, arg_params, kw_params, line)
                return

        # unknown callee: every parameter argument escapes
        for param, _sl in (*arg_params, *kw_params.values()):
            if param is not None:
                eff = self.fe.effect(param)
                eff.may_read = eff.may_write = True

    def _propagate(
        self,
        fn: ast.FunctionDef,
        call: ast.Call,
        arg_params: list[tuple[Optional[str], str]],
        kw_params: dict[str, tuple[Optional[str], str]],
        line: int,
    ) -> None:
        callee = self.an.effects_of(fn)
        # positional arguments (a *args in the call defeats the mapping)
        if any(isinstance(a, ast.Starred) for a in call.args):
            for param, _sl in (*arg_params, *kw_params.values()):
                if param is not None:
                    eff = self.fe.effect(param)
                    eff.may_read = eff.may_write = True
            return
        for i, (param, _sl) in enumerate(arg_params):
            if param is None:
                continue
            if i < len(callee.params):
                target = callee.params[i]
            elif callee.vararg is not None:
                target = callee.vararg
            else:
                continue
            self.fe.effect(param).merge_callee(callee.effect(target), line)
        for name, (param, _sl) in kw_params.items():
            if param is not None and name in callee.effects:
                self.fe.effect(param).merge_callee(callee.effect(name), line)


# ----------------------------------------------------------------------
# Clause diffing
# ----------------------------------------------------------------------
def _declared_sets(decl: TaskDecl) -> tuple[set[str], set[str], set[str]]:
    ins = set(decl.declared_names("inputs"))
    outs = set(decl.declared_names("outputs"))
    inouts = set(decl.declared_names("inouts"))
    return ins, outs, inouts


def _is_empty_body(fn: "ast.FunctionDef | ast.Lambda") -> bool:
    """``pass``/docstring/``...`` bodies: the timing-only task idiom.

    Simulation-only task declarations legitimately carry clauses with an
    empty body (the dependences *are* the program); the absence-based
    checks (S002/S003/S005) stay silent for them.
    """
    body = fn.body if isinstance(fn.body, list) else [ast.Expr(fn.body)]
    for s in body:
        if isinstance(s, ast.Pass):
            continue
        if isinstance(s, ast.Expr) and isinstance(s.value, ast.Constant):
            continue  # docstring / Ellipsis
        return False
    return True


def check_decl_effects(
    analyzer: EffectAnalyzer, decl: TaskDecl, *, lint_alongside: bool = True
) -> list[Diagnostic]:
    """Diff one declaration's inferred footprints against its clauses.

    With ``lint_alongside`` (the default for source-tree passes) direct
    stores into an inputs-declared parameter are left to the classic
    directive lint (SAN-L002) to avoid double-reporting; the live-mode
    pre-flight passes ``False`` because no lint runs next to it there.
    """
    if decl.func_node is None or decl.params is None or not decl.literal:
        return []
    empty = _is_empty_body(decl.func_node)
    fe = analyzer.effects_of(decl.func_node)
    ins, outs, inouts = _declared_sets(decl)
    out: list[Diagnostic] = []
    for p in decl.params:
        eff = fe.effects.get(p, ParamEffect())
        writable = p in outs or p in inouts
        declared = p in ins or writable

        # -- SAN-S001: undeclared write --------------------------------
        if eff.is_written and not writable:
            direct_only = eff.write_kinds() <= {"store", "aug"}
            if not (lint_alongside and p in ins and direct_only):
                line, kind = min(eff.writes.values())
                via = {
                    "call": "through a kernel call",
                    "alias": "through an alias",
                    "store": "by a store",
                    "aug": "by in-place arithmetic",
                    "del": "by a deletion",
                }[kind]
                out.append(Diagnostic(
                    code="SAN-S001",
                    message=(
                        f"task {decl.version_name!r}: parameter {p!r} is "
                        f"written {via} (body line {line}) but is not "
                        "declared output/inout (inferred footprint: "
                        f"{eff.render()})"
                    ),
                    file=decl.file, line=decl.line,
                ))

        if empty:
            continue

        # -- SAN-S005: stale read of an output-only parameter ----------
        if eff.has_direct_read and p in outs and p not in ins \
                and p not in inouts:
            line = min(ln for ln, kind in eff.reads.values()
                       if kind == "load")
            out.append(Diagnostic(
                code="SAN-S005",
                message=(
                    f"task {decl.version_name!r}: parameter {p!r} is "
                    "declared output-only but the body reads it (body "
                    f"line {line}); the value read is stale — declare "
                    "inout"
                ),
                severity=Severity.WARNING,
                file=decl.file, line=decl.line,
            ))

        # -- SAN-S002: dead clauses ------------------------------------
        if declared and not eff.is_read and not eff.is_written \
                and not eff.may_read and not eff.may_write:
            kind = "inouts" if p in inouts else ("outputs" if p in outs
                                                 else "inputs")
            out.append(Diagnostic(
                code="SAN-S002",
                message=(
                    f"task {decl.version_name!r}: parameter {p!r} is "
                    f"declared in the {kind} clause but the body never "
                    "touches it; the dependence over-constrains the DAG"
                ),
                severity=Severity.WARNING,
                file=decl.file, line=decl.line,
            ))
        elif p in outs and p not in inouts and not eff.is_written \
                and not eff.may_write and (eff.is_read or eff.may_read):
            out.append(Diagnostic(
                code="SAN-S002",
                message=(
                    f"task {decl.version_name!r}: parameter {p!r} is "
                    "declared output but the body never writes it "
                    f"(inferred footprint: {eff.render()})"
                ),
                severity=Severity.WARNING,
                file=decl.file, line=decl.line,
            ))

        # -- SAN-S003: downgradable inout ------------------------------
        if p in inouts and (eff.is_read or eff.is_written):
            if eff.is_read and not eff.is_written and not eff.may_write:
                out.append(Diagnostic(
                    code="SAN-S003",
                    message=(
                        f"task {decl.version_name!r}: parameter {p!r} is "
                        "declared inout but the body only reads it; an "
                        "input clause would admit more parallelism"
                    ),
                    severity=Severity.INFO,
                    file=decl.file, line=decl.line,
                ))
            elif eff.is_written and not eff.is_read and not eff.may_read:
                out.append(Diagnostic(
                    code="SAN-S003",
                    message=(
                        f"task {decl.version_name!r}: parameter {p!r} is "
                        "declared inout but the body only writes it; an "
                        "output clause would break the serial chain"
                    ),
                    severity=Severity.INFO,
                    file=decl.file, line=decl.line,
                ))
    return out


def check_implements_effects(
    analyzer: EffectAnalyzer,
    decls: Sequence[TaskDecl],
    bindings: dict[str, list[str]],
) -> list[Diagnostic]:
    """SAN-S004: versions of one task must agree on inferred effects.

    Compared positionally (versions may rename parameters); a parameter
    one version definitely writes that another version provably never
    writes (no write, no may-write) makes the versions non-equivalent.
    """
    mains: dict[str, list[TaskDecl]] = {}
    for d in decls:
        if d.is_main:
            mains.setdefault(d.version_name, []).append(d)

    out: list[Diagnostic] = []
    for decl in decls:
        if decl.is_main or decl.func_node is None or decl.params is None:
            continue
        kind, ref = decl.implements_ref  # type: ignore[misc]
        main_names = [ref] if kind == "name" else bindings.get(ref, [])
        candidates = [
            m
            for name in main_names
            for m in mains.get(name, [])
            if m is not decl and m.func_node is not None
            and m.params is not None and len(m.params) == len(decl.params)
        ]
        if not candidates:
            continue
        main = candidates[0]
        if main.func_node is decl.func_node:
            continue  # same kernel function: trivially equivalent
        fe_v = analyzer.effects_of(decl.func_node)
        fe_m = analyzer.effects_of(main.func_node)
        assert main.params is not None and decl.params is not None
        for i, (pv, pm) in enumerate(zip(decl.params, main.params, strict=False)):
            ev = fe_v.effects.get(pv, ParamEffect())
            em = fe_m.effects.get(pm, ParamEffect())
            for a, b, an_, bn in ((ev, em, pv, pm), (em, ev, pm, pv)):
                if a.is_written and not b.is_written and not b.may_write:
                    writer = decl if a is ev else main
                    other = main if a is ev else decl
                    out.append(Diagnostic(
                        code="SAN-S004",
                        message=(
                            f"version {decl.version_name!r} (implements "
                            f"{main.version_name!r}): parameter #{i} is "
                            f"written by {writer.version_name!r} "
                            f"({an_!r}: {a.render()}) but provably "
                            f"untouched by {other.version_name!r} "
                            f"({bn!r}: {b.render()}); the versions are "
                            "not interchangeable"
                        ),
                        file=decl.file, line=decl.line,
                    ))
                    break
    return out


# ----------------------------------------------------------------------
# Entry points
# ----------------------------------------------------------------------
def analyzer_for(linter: DirectiveLinter) -> EffectAnalyzer:
    return EffectAnalyzer(linter._global_functions)


def check_effects(linter: DirectiveLinter) -> list[Diagnostic]:
    """All SAN-S00x findings for a built :class:`DirectiveLinter`."""
    analyzer = analyzer_for(linter)
    decls = [d for m in linter.modules for d in m.decls]
    bindings: dict[str, list[str]] = {}
    for m in linter.modules:
        for key, names in m.bindings.items():
            bindings.setdefault(key, []).extend(names)
    out: list[Diagnostic] = []
    for decl in decls:
        out.extend(check_decl_effects(analyzer, decl))
    out.extend(check_implements_effects(analyzer, decls, bindings))
    return out


def check_effect_paths(paths: Iterable[str]) -> list[Diagnostic]:
    """Effect-inference findings for files/directories (no waiving)."""
    from repro.sanitizer.lint import _iter_py_files

    files = _iter_py_files(paths)
    if not files:
        return []
    return check_effects(DirectiveLinter(files))


def check_definitions(definitions: "dict | object") -> list[Diagnostic]:
    """Live-mode effect pre-flight over registered task definitions.

    Consumes :class:`~repro.runtime.task.TaskVersion` objects (their
    ``clauses`` snapshot plus the kernel callable's source, recovered via
    :mod:`inspect`) instead of scanning a source tree — this is what
    ``RunResult.validate(static=True)`` runs.  Versions with callable
    clause specs (``clauses is None``) or unrecoverable source (REPL,
    C extensions) are skipped silently: the pre-flight is best-effort.
    """
    import inspect

    defs = definitions.values() if hasattr(definitions, "values") \
        else list(definitions)  # type: ignore[arg-type]

    # one parse per distinct source file; a shared function index gives
    # the analyzer call-propagation across helper kernels
    trees: dict[str, ast.Module] = {}
    functions: dict[str, list[ast.FunctionDef]] = {}
    by_file: dict[str, dict[str, list[ast.FunctionDef]]] = {}
    located: list[tuple[object, str, ast.FunctionDef]] = []

    def _tree(path: str) -> Optional[ast.Module]:
        if path in trees:
            return trees[path]
        try:
            with open(path, encoding="utf-8") as fh:
                tree = ast.parse(fh.read(), filename=path)
        except (OSError, SyntaxError):
            return None
        trees[path] = tree
        local = by_file.setdefault(path, {})
        for node in ast.walk(tree):
            if isinstance(node, ast.FunctionDef):
                functions.setdefault(node.name, []).append(node)
                local.setdefault(node.name, []).append(node)
        return tree

    for defn in defs:
        for version in defn.versions:  # type: ignore[attr-defined]
            if version.clauses is None or version.fn is None:
                continue
            fn = inspect.unwrap(version.fn)
            try:
                path = inspect.getsourcefile(fn)
            except TypeError:
                continue
            if path is None or _tree(path) is None:
                continue
            name = getattr(fn, "__name__", None)
            candidates = by_file.get(path, {}).get(name or "", [])
            if not candidates:
                continue
            # multiple same-named defs: pick the one nearest the code
            # object's first line (decorator offsets differ per version)
            first = getattr(getattr(fn, "__code__", None), "co_firstlineno", 0)
            node = min(candidates, key=lambda f: abs(f.lineno - first))
            located.append((version, path, node))

    if not located:
        return []
    analyzer = EffectAnalyzer(functions)
    out: list[Diagnostic] = []
    decls: list[TaskDecl] = []
    for version, path, node in located:
        decl = TaskDecl(
            file=path,
            line=node.lineno,
            version_name=version.name,  # type: ignore[attr-defined]
            clauses={k: list(version.clauses.get(k, ()))  # type: ignore[attr-defined]
                     for k in CLAUSE_KINDS},
            literal=True,
            implements_ref=(
                None if version.is_main  # type: ignore[attr-defined]
                else ("name", version.task_name)  # type: ignore[attr-defined]
            ),
            params=_func_params(node),
            func_node=node,
        )
        decls.append(decl)
        out.extend(check_decl_effects(analyzer, decl, lint_alongside=False))
    out.extend(check_implements_effects(analyzer, decls, {}))
    return out
