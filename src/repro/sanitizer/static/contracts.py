"""Scheduler/cluster contract lint: AST checks for runtime-integrity rules.

Schedulers and cluster plugins run inside the runtime's event loop with
full access to its internals; four contracts keep them honest, each the
static form of a bug class this repo has actually hit:

* **SAN-S010** — *never mutate the trace.*  The trace is the runtime's
  append-only record; policies may call ``trace.add`` and read events,
  but assigning trace attributes or mutating its event list rewrites
  history that the SAN-T invariant checks and the analysis layer rely
  on.
* **SAN-S011** — *never poke worker state.*  ``alive``, ``queue``,
  ``current``, ``free_at``, ``busy_time``, ``tasks_run``,
  ``quarantined_until`` are owned by the runtime's dispatch/finish
  paths; a scheduler writing them desynchronises the event loop.
  Schedulers observe workers and call ``rt.dispatch``.
* **SAN-S012** — *every ``task_ready`` path must hand the task off.*  A
  ready task the scheduler neither dispatches, pools, buffers, nor
  delegates is silently dropped: the run deadlocks at ``wait_all`` with
  no diagnostic.  Every control-flow path must pass the task to a call,
  store it into a container, or raise.
* **SAN-S013** — *labels and meta must use run-local ids.*  Raw
  ``t.uid`` values in trace labels or protocol metadata differ between
  otherwise-identical runs (uids are process-global), breaking
  byte-identical trace comparison — the PR 5 regression class.  Wrap
  them: ``self.rt._local_ids.get(t.uid, t.uid)``.

Scope: every class that defines a ``task_ready`` method (wherever it
lives — fixtures included), plus every module under a ``schedulers`` or
``cluster`` directory.  The runtime itself (``runtime/``) legitimately
owns worker state and is out of scope.
"""

from __future__ import annotations

import ast
import os
from dataclasses import dataclass
from typing import Iterable, Optional, Sequence

from repro.sanitizer.diagnostics import Diagnostic

#: worker attributes owned by the runtime's dispatch/finish machinery
_WORKER_ATTRS = frozenset({
    "alive", "queue", "current", "free_at", "busy_time", "tasks_run",
    "quarantined_until",
})

#: container mutators (for ``w.queue.append(...)`` style pokes and
#: ``trace.events.clear()`` style history rewrites)
_MUTATOR_METHODS = frozenset({
    "append", "appendleft", "pop", "popleft", "insert", "remove",
    "clear", "extend", "sort", "reverse", "update", "setdefault",
    "add", "discard",
})

#: the one trace method policies may call
_TRACE_ALLOWED = frozenset({"add"})

_SCOPED_DIRS = ("schedulers", "cluster")


def _dotted(node: ast.expr) -> Optional[str]:
    """Dotted path of an attribute chain, looking through subscripts
    (``self.rt.workers[0].alive`` → ``self.rt.workers.alive``)."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        base = _dotted(node.value)
        return None if base is None else f"{base}.{node.attr}"
    if isinstance(node, ast.Subscript):
        return _dotted(node.value)
    return None


def _in_scoped_dir(path: str) -> bool:
    parts = os.path.normpath(path).split(os.sep)
    return any(p in _SCOPED_DIRS for p in parts[:-1])


@dataclass
class _Scope:
    """One unit the contract checks run over."""

    path: str
    name: str  # class or module name, for messages
    nodes: list[ast.stmt]
    task_ready: Optional[ast.FunctionDef] = None


def _collect_scopes(path: str, tree: ast.Module) -> list[_Scope]:
    scopes: list[_Scope] = []
    module_scoped = _in_scoped_dir(path)
    for node in tree.body:
        if isinstance(node, ast.ClassDef):
            ready = next(
                (
                    s for s in node.body
                    if isinstance(s, ast.FunctionDef) and s.name == "task_ready"
                ),
                None,
            )
            if ready is not None or module_scoped:
                scopes.append(_Scope(path, node.name, node.body, ready))
        elif module_scoped:
            scopes.append(_Scope(path, os.path.basename(path), [node]))
    return scopes


# ----------------------------------------------------------------------
# SAN-S010 / SAN-S011 — trace mutation & worker pokes
# ----------------------------------------------------------------------
def _check_state_pokes(scope: _Scope) -> list[Diagnostic]:
    out: list[Diagnostic] = []
    for root in scope.nodes:
        for node in ast.walk(root):
            if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
                targets = node.targets if isinstance(node, ast.Assign) \
                    else [node.target]
                for tgt in targets:
                    out.extend(_poke_target(scope, tgt, node.lineno))
            elif isinstance(node, ast.Delete):
                for tgt in node.targets:
                    out.extend(_poke_target(scope, tgt, node.lineno))
            elif isinstance(node, ast.Call):
                out.extend(_poke_call(scope, node))
    return out


def _poke_target(scope: _Scope, tgt: ast.expr, line: int) -> list[Diagnostic]:
    # unwrap a subscript store: trace.events[0] = ... / w.queue[0] = ...
    base = tgt.value if isinstance(tgt, ast.Subscript) else tgt
    dotted = _dotted(base)
    if dotted is None:
        return []
    parts = dotted.split(".")
    if "trace" in parts[:-1] or parts[-1] == "trace" and isinstance(
        tgt, ast.Subscript
    ):
        return [Diagnostic(
            code="SAN-S010",
            message=(
                f"{scope.name}: assignment to {dotted!r} mutates the "
                "runtime trace; the trace is append-only (use trace.add)"
            ),
            file=scope.path, line=line,
        )]
    if len(parts) >= 2 and parts[-1] in _WORKER_ATTRS and parts[-2] not in (
        "self",
    ):
        return [Diagnostic(
            code="SAN-S011",
            message=(
                f"{scope.name}: assignment to {dotted!r} pokes "
                "runtime-owned worker state; schedulers must observe "
                "workers and go through rt.dispatch"
            ),
            file=scope.path, line=line,
        )]
    return []


def _poke_call(scope: _Scope, call: ast.Call) -> list[Diagnostic]:
    if not isinstance(call.func, ast.Attribute):
        return []
    method = call.func.attr
    recv = _dotted(call.func.value)
    if recv is None:
        return []
    parts = recv.split(".")
    # trace.add(...) is the sanctioned append; anything else on the
    # trace object or its attributes (trace.events.clear()) rewrites it
    if "trace" in parts:
        direct = parts[-1] == "trace"
        if direct and method in _TRACE_ALLOWED:
            return []
        if method in _MUTATOR_METHODS:
            return [Diagnostic(
                code="SAN-S010",
                message=(
                    f"{scope.name}: call {recv}.{method}(...) mutates the "
                    "runtime trace; the trace is append-only (use "
                    "trace.add)"
                ),
                file=scope.path, line=call.lineno,
            )]
        return []
    if len(parts) >= 2 and parts[-1] in _WORKER_ATTRS \
            and parts[0] != "self" and method in _MUTATOR_METHODS:
        return [Diagnostic(
            code="SAN-S011",
            message=(
                f"{scope.name}: call {recv}.{method}(...) mutates "
                "runtime-owned worker state; schedulers must observe "
                "workers and go through rt.dispatch"
            ),
            file=scope.path, line=call.lineno,
        )]
    return []


# ----------------------------------------------------------------------
# SAN-S012 — task_ready must hand the task off on every path
# ----------------------------------------------------------------------
def _check_task_ready_paths(scope: _Scope) -> list[Diagnostic]:
    fn = scope.task_ready
    if fn is None:
        return []
    args = fn.args
    names = [a.arg for a in (*args.posonlyargs, *args.args)]
    # task_ready(self, t): the task is the first non-self parameter
    task_names = {n for n in names[1:2]}
    if not task_names:
        return []
    violations: list[int] = []
    falls, handled = _walk_block(fn.body, False, task_names, violations)
    if falls and not handled:
        violations.append(fn.body[-1].lineno if fn.body else fn.lineno)
    return [
        Diagnostic(
            code="SAN-S012",
            message=(
                f"{scope.name}.task_ready: a control-flow path returns "
                f"(line {line}) without dispatching, pooling, or "
                "delegating the ready task; the task is silently "
                "dropped and the run deadlocks at wait_all"
            ),
            file=scope.path, line=line,
        )
        for line in sorted(set(violations))
    ]


def _handles_task(stmt: ast.stmt, task_names: set[str]) -> bool:
    """Does this statement hand the task off somewhere?"""
    def is_task(e: ast.expr) -> bool:
        return isinstance(e, ast.Name) and e.id in task_names

    for node in ast.walk(stmt):
        if isinstance(node, ast.Call):
            if any(is_task(a) for a in node.args) or any(
                is_task(k.value) for k in node.keywords
            ):
                return True
            if any(
                isinstance(a, ast.Starred) and is_task(a.value)
                for a in node.args
            ):
                return True
        elif isinstance(node, ast.Assign):
            if is_task(node.value) and any(
                isinstance(t, (ast.Subscript, ast.Attribute))
                for t in node.targets
            ):
                return True
    return False


def _walk_block(
    stmts: Sequence[ast.stmt],
    handled: bool,
    task_names: set[str],
    violations: list[int],
) -> tuple[bool, bool]:
    """Returns (falls_through, handled_at_fallthrough)."""
    compound = (ast.If, ast.For, ast.While, ast.Try, ast.With)
    for s in stmts:
        # compound statements are analysed per-branch below; judging
        # them whole would mark an `if` handled when only one arm is
        if not isinstance(s, compound) and _handles_task(s, task_names):
            handled = True
        # aliasing: x = t makes x a handle too
        if isinstance(s, ast.Assign) and isinstance(s.value, ast.Name) \
                and s.value.id in task_names:
            for tgt in s.targets:
                if isinstance(tgt, ast.Name):
                    task_names = task_names | {tgt.id}
        if isinstance(s, ast.Return):
            if not handled:
                violations.append(s.lineno)
            return False, handled
        if isinstance(s, ast.Raise):
            return False, handled  # loud failure: an acceptable path
        if isinstance(s, ast.If):
            body_falls, body_handled = _walk_block(
                s.body, handled, task_names, violations)
            else_falls, else_handled = _walk_block(
                s.orelse, handled, task_names, violations)
            if not body_falls and not else_falls:
                return False, handled
            if body_falls and else_falls:
                handled = body_handled and else_handled
            else:
                handled = body_handled if body_falls else else_handled
        elif isinstance(s, (ast.For, ast.While)):
            # a loop body that handles the task counts (schedulers
            # commonly dispatch inside a worker loop); zero-iteration
            # loops are accepted as a documented blind spot
            _falls, body_handled = _walk_block(
                s.body, handled, task_names, violations)
            _walk_block(s.orelse, handled, task_names, violations)
            handled = handled or body_handled
        elif isinstance(s, ast.Try):
            body_falls, body_handled = _walk_block(
                s.body, handled, task_names, violations)
            for h in s.handlers:
                _walk_block(h.body, handled, task_names, violations)
            if s.finalbody:
                fin_falls, fin_handled = _walk_block(
                    s.finalbody, body_handled, task_names, violations)
                if not fin_falls:
                    return False, fin_handled
                handled = fin_handled
            else:
                handled = body_handled if body_falls else handled
        elif isinstance(s, ast.With):
            falls, handled = _walk_block(
                s.body, handled, task_names, violations)
            if not falls:
                return False, handled
    return True, handled


# ----------------------------------------------------------------------
# SAN-S013 — run-local ids in labels and meta
# ----------------------------------------------------------------------
def _check_uid_labels(scope: _Scope) -> list[Diagnostic]:
    out: list[Diagnostic] = []
    for root in scope.nodes:
        for node in ast.walk(root):
            if not isinstance(node, ast.Call):
                continue
            exprs: list[ast.expr] = [
                k.value for k in node.keywords if k.arg in ("label", "meta")
            ]
            # positional label/meta of trace.add(start, end, worker,
            # category, label, meta)
            if isinstance(node.func, ast.Attribute) \
                    and node.func.attr == "add":
                recv = _dotted(node.func.value)
                if recv is not None and recv.split(".")[-1] == "trace":
                    exprs.extend(node.args[4:6])
            for expr in exprs:
                out.extend(_uids_outside_local_map(scope, expr))
    return out


def _uids_outside_local_map(scope: _Scope, expr: ast.expr) -> list[Diagnostic]:
    # nodes protected by an enclosing `..._local_ids.get(...)` call
    protected: set[int] = set()
    for node in ast.walk(expr):
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
            recv = _dotted(node.func.value)
            if recv is not None and recv.split(".")[-1] == "_local_ids":
                for sub in ast.walk(node):
                    protected.add(id(sub))
    out = []
    for node in ast.walk(expr):
        if isinstance(node, ast.Attribute) and node.attr == "uid" \
                and id(node) not in protected:
            owner = _dotted(node.value) or "<expr>"
            out.append(Diagnostic(
                code="SAN-S013",
                message=(
                    f"{scope.name}: {owner}.uid used in an emitted "
                    "label/meta value; uids are process-global and break "
                    "run-to-run trace comparison — wrap with "
                    "self.rt._local_ids.get(uid, uid)"
                ),
                file=scope.path, line=node.lineno,
            ))
    return out


# ----------------------------------------------------------------------
# Entry points
# ----------------------------------------------------------------------
def check_contract_files(files: Sequence[str]) -> list[Diagnostic]:
    """All SAN-S01x findings for the given Python files (no waiving)."""
    out: list[Diagnostic] = []
    for path in files:
        try:
            with open(path, encoding="utf-8") as fh:
                tree = ast.parse(fh.read(), filename=path)
        except (OSError, SyntaxError):
            continue
        for scope in _collect_scopes(path, tree):
            out.extend(_check_state_pokes(scope))
            out.extend(_check_task_ready_paths(scope))
            out.extend(_check_uid_labels(scope))
    return out


def check_contract_paths(paths: Iterable[str]) -> list[Diagnostic]:
    """Contract findings for files/directories (no waiving)."""
    from repro.sanitizer.lint import _iter_py_files

    return check_contract_files(_iter_py_files(paths))
