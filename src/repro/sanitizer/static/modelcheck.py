"""Bounded model checking of the cluster notification protocol.

The :class:`~repro.cluster.protocol.NotificationRouter` promises
exactly-once ``on_clear`` per successor under message drop, duplication,
delay and node crash.  Its unit tests exercise chosen schedules; this
module checks the promise *exhaustively* at small scope: every
interleaving of wire deliveries, timer firings, adversarial drops /
duplicates and node crashes for a bounded scenario (2–3 nodes, 2–4
messages, a bounded fault budget) is explored, and each reached state is
checked against four safety/liveness properties:

* **SAN-P001** — ``on_clear`` fired more often than the protocol's
  release opportunities allow (a legitimate re-open — a fresh send after
  a clear — raises the allowance by one),
* **SAN-P002** — deadlock: the system quiesced (no wire traffic, no
  live timers, nothing left to send) with a successor that was notified
  but never released,
* **SAN-P003** — epoch-fencing violation: a wire message from a crashed
  sender incarnation was logically applied,
* **SAN-P004** — premature release: ``on_clear`` fired before every
  distinct logical notification for that successor had been delivered
  (the broken-dedup signature: one duplicated message counted twice).

The checker drives the **real router** — not a re-model of it — through
a fake runtime harness (deterministic engine, transfer engine that
parks messages on a wire list, recording trace).  Exploration is
replay-based breadth-first search: a state is the action sequence that
produced it, re-executed from the root on expansion; canonical state
fingerprints prune the search.  Violations come back with the full
action trace rendered as an ASCII message sequence diagram.

``NotificationRetryExceededError`` is a *loud* failure (the run aborts
with a diagnosis), so paths that exhaust the retransmit budget count as
aborted, not as violations.
"""

from __future__ import annotations

import itertools
from collections import deque
from dataclasses import dataclass, field, replace
from typing import Callable, Optional, Sequence

from repro.cluster.protocol import (
    ClusterStats,
    NotificationRetryExceededError,
    NotificationRouter,
    ProtocolConfig,
)
from repro.sanitizer.diagnostics import Diagnostic

#: ordering of property codes in reports
PROPERTY_CODES = ("SAN-P001", "SAN-P002", "SAN-P003", "SAN-P004")


# ----------------------------------------------------------------------
# Scenarios
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Scenario:
    """One bounded configuration of the protocol to explore."""

    name: str
    n_nodes: int
    #: logical notifications: (src_node, dst_node, successor uid)
    sends: tuple[tuple[int, int, int], ...]
    config: ProtocolConfig = field(default_factory=ProtocolConfig)
    #: adversary budgets
    max_drops: int = 1
    max_dups: int = 1
    max_crashes: int = 0
    #: nodes the adversary may crash (default: all)
    crashable: Optional[tuple[int, ...]] = None
    #: issue sends as explorable actions (True) or all up front (False)
    interleave_sends: bool = True
    #: exploration cap; hitting it marks the result ``truncated``
    max_states: int = 400_000

    def crash_candidates(self) -> tuple[int, ...]:
        if self.crashable is not None:
            return self.crashable
        return tuple(range(self.n_nodes))


def default_scenarios(*, small: bool = False) -> list[Scenario]:
    """The shipped verification suite.

    ``small`` keeps only the quick scenarios (used by the CLI's
    pre-flight); the full list is what CI runs.
    """
    fast = ProtocolConfig(reliable=True, max_retransmits=2)
    scenarios = [
        # one edge, lossy+duplicating wire: the core exactly-once story
        Scenario(
            name="one-edge-lossy",
            n_nodes=2,
            sends=((0, 1, 7),),
            config=fast,
            max_drops=2, max_dups=1,
        ),
        # two predecessors, one successor: counting + re-open semantics
        Scenario(
            name="two-preds-one-succ",
            n_nodes=3,
            sends=((0, 2, 9), (1, 2, 9)),
            config=fast,
            max_drops=1, max_dups=1,
        ),
    ]
    if not small:
        scenarios += [
            # sender crash mid-flight: epoch fencing + crash recovery
            Scenario(
                name="sender-crash-recovery",
                n_nodes=2,
                sends=((0, 1, 7),),
                config=fast,
                max_drops=1, max_dups=0, max_crashes=1,
                crashable=(0,),
            ),
            # the acceptance scope: 3 nodes, 3 messages, <=1 crash
            Scenario(
                name="three-node-crash",
                n_nodes=3,
                sends=((0, 2, 9), (1, 2, 9), (0, 1, 5)),
                config=ProtocolConfig(reliable=True, max_retransmits=1),
                max_drops=1, max_dups=0, max_crashes=1,
                crashable=(0,),
            ),
        ]
    return scenarios


def ablation_scenario() -> Scenario:
    """``reliable=False`` fire-and-forget: one drop deadlocks a successor."""
    return Scenario(
        name="unreliable-ablation",
        n_nodes=2,
        sends=((0, 1, 7),),
        config=ProtocolConfig(reliable=False),
        max_drops=1, max_dups=0,
    )


# ----------------------------------------------------------------------
# Fake runtime harness
# ----------------------------------------------------------------------
class _FakeEvent:
    __slots__ = ("eid", "time", "fn", "kind", "label", "cancelled")

    def __init__(self, eid: int, time: float, fn: Callable[[], None],
                 kind: object, label: str) -> None:
        self.eid = eid
        self.time = time
        self.fn = fn
        self.kind = kind
        self.label = label
        self.cancelled = False

    def cancel(self) -> None:
        self.cancelled = True


class _FakeEngine:
    """Deterministic event registry: the *adversary* decides firing order."""

    def __init__(self) -> None:
        self.now = 0.0
        self._ids = itertools.count(1)
        self.events: dict[int, _FakeEvent] = {}

    def schedule(self, time: float, fn: Callable[[], None], *,
                 kind: object = None, label: str = "") -> _FakeEvent:
        ev = _FakeEvent(next(self._ids), time, fn, kind, label)
        self.events[ev.eid] = ev
        return ev

    def live_events(self) -> list[_FakeEvent]:
        return [e for e in self.events.values() if not e.cancelled]

    def fire(self, eid: int) -> None:
        ev = self.events.pop(eid)
        self.now = max(self.now, ev.time)
        if not ev.cancelled:
            ev.fn()


class _WireMessage:
    __slots__ = ("wid", "src_host", "dst_host", "nbytes", "label", "meta",
                 "category", "on_deliver", "dups_used")

    def __init__(self, wid: int, src_host: str, dst_host: str, nbytes: int,
                 label: str, meta: tuple, category: str,
                 on_deliver: Optional[Callable[[], None]]) -> None:
        self.wid = wid
        self.src_host = src_host
        self.dst_host = dst_host
        self.nbytes = nbytes
        self.label = label
        self.meta = meta
        self.category = category
        self.on_deliver = on_deliver
        self.dups_used = 0

    def key(self) -> tuple:
        return (self.category, self.src_host, self.dst_host, self.label,
                self.meta, self.dups_used)


class _FakeTransferEngine:
    """Parks every message on a wire list; the adversary delivers/drops."""

    WIRE_LATENCY = 1.0

    def __init__(self, engine: _FakeEngine) -> None:
        self.engine = engine
        self._ids = itertools.count(1)
        self.wire: dict[int, _WireMessage] = {}

    def send_message(self, src_host: str, dst_host: str, nbytes: int, *,
                     label: str = "", meta: tuple = (), category: str = "msg",
                     on_deliver: Optional[Callable[[], None]] = None) -> float:
        msg = _WireMessage(next(self._ids), src_host, dst_host, nbytes,
                           label, tuple(meta), category, on_deliver)
        self.wire[msg.wid] = msg
        return self.engine.now + self.WIRE_LATENCY


class _FakeTrace:
    def __init__(self) -> None:
        self.records: list[tuple[str, str]] = []

    def add(self, start: float, end: float, worker: str = "",
            category: str = "", label: str = "", meta: tuple = ()) -> None:
        self.records.append((category, label))


class _FakeRuntime:
    def __init__(self) -> None:
        self.engine = _FakeEngine()
        self.transfer_engine = _FakeTransferEngine(self.engine)
        self.trace = _FakeTrace()
        self._local_ids: dict[int, int] = {}


# ----------------------------------------------------------------------
# Timeline events (structured; rendered by render_msc)
# ----------------------------------------------------------------------
#: ("msg",   src_node, dst_node, text)  — an arrow in the diagram
#: ("note",  node, text)                — annotation at one lifeline
#: ("global", text)                     — full-width annotation
TimelineEvent = tuple


@dataclass
class Violation:
    code: str
    detail: str
    scenario: str
    path: tuple
    timeline: tuple
    n_nodes: int

    def render(self) -> str:
        msc = render_msc(self.timeline, self.n_nodes)
        return (
            f"{self.detail}\n"
            f"counterexample in scenario {self.scenario!r} "
            f"({len(self.path)} steps):\n{msc}"
        )


@dataclass
class ExplorationResult:
    scenario: Scenario
    states: int
    violations: list[Violation]
    aborted_paths: int
    truncated: bool

    @property
    def ok(self) -> bool:
        return not self.violations and not self.truncated


class _Harness:
    """One live instance of a scenario driving the real router."""

    def __init__(
        self,
        scenario: Scenario,
        router_factory: Optional[Callable[..., NotificationRouter]] = None,
    ) -> None:
        self.scenario = scenario
        self.rt = _FakeRuntime()
        self.stats = ClusterStats(n_nodes=scenario.n_nodes)
        factory = router_factory or NotificationRouter
        self.router = factory(self.rt, self.stats, config=scenario.config)
        self.hosts = {i: f"n{i}" for i in range(scenario.n_nodes)}
        self.node_of_host = {h: i for i, h in self.hosts.items()}
        self.router.host_of_node = dict(self.hosts)
        self.placement: dict[int, int] = {
            uid: dst for _, dst, uid in scenario.sends
        }
        self.router.resolve_node = lambda uid: self.placement.get(uid, 0)

        self.sends_used = [False] * len(scenario.sends)
        self.drops_left = scenario.max_drops
        self.dups_left = scenario.max_dups
        self.crashes_left = scenario.max_crashes
        self.crashed: set[int] = set()

        self.sends_issued: dict[int, int] = {}
        self.delivered: dict[int, set] = {}
        self.clears: dict[int, int] = {}
        self.opportunities: dict[int, int] = {}

        self.timeline: list[TimelineEvent] = []
        self.violations: list[Violation] = []
        self.aborted = False

        self._install_spies()
        if not scenario.interleave_sends:
            for k in range(len(scenario.sends)):
                self._do_send(k)

    # -- property spies -------------------------------------------------
    def _install_spies(self) -> None:
        router = self.router
        orig_deliver = router._deliver_logical
        orig_wire = router._on_wire_delivered
        orig_clear = router.on_clear

        def deliver_spy(msg):  # instance attr shadows the class method
            uid = msg.succ_uid
            before = router.pending(uid)
            self.delivered.setdefault(uid, set()).add(
                (msg.src_node, msg.seq))
            self._note(
                self.placement.get(uid, msg.dst_node),
                f"apply uid={uid} seq={msg.seq} (pending {before})",
            )
            return orig_deliver(msg)

        def wire_spy(msg, dst_node):
            stale = router.epoch(msg.src_node) != msg.epoch
            seen = {
                k: set(v) for k, v in self.delivered.items()
            }
            result = orig_wire(msg, dst_node)
            if stale:
                applied = any(
                    v - seen.get(k, set())
                    for k, v in self.delivered.items()
                )
                if applied:
                    self._violate(
                        "SAN-P003",
                        f"stale-epoch message applied: node {msg.src_node} "
                        f"seq {msg.seq} was sent in epoch {msg.epoch} but "
                        f"the node is now at epoch "
                        f"{router.epoch(msg.src_node)}",
                    )
            return result

        def clear_spy(uid):
            self.clears[uid] = self.clears.get(uid, 0) + 1
            self._note(
                self.placement.get(uid, 0),
                f"on_clear uid={uid} (release #{self.clears[uid]})",
            )
            if self.clears[uid] > self.opportunities.get(uid, 0):
                self._violate(
                    "SAN-P001",
                    f"on_clear fired {self.clears[uid]} times for "
                    f"successor uid={uid} with only "
                    f"{self.opportunities.get(uid, 0)} release "
                    "opportunities (double release)",
                )
            issued = self.sends_issued.get(uid, 0)
            distinct = len(self.delivered.get(uid, ()))
            if distinct < issued:
                self._violate(
                    "SAN-P004",
                    f"on_clear fired for successor uid={uid} after only "
                    f"{distinct} of {issued} distinct notifications were "
                    "delivered (premature release)",
                )
            return orig_clear(uid)

        router._deliver_logical = deliver_spy
        router._on_wire_delivered = wire_spy
        router.on_clear = clear_spy

    # -- timeline helpers ----------------------------------------------
    def _note(self, node: int, text: str) -> None:
        self.timeline.append(("note", node, text))

    def _violate(self, code: str, detail: str) -> None:
        self.timeline.append(("global", f"VIOLATION {code}: {detail}"))
        self.violations.append(Violation(
            code=code,
            detail=detail,
            scenario=self.scenario.name,
            path=(),
            timeline=tuple(self.timeline),
            n_nodes=self.scenario.n_nodes,
        ))

    # -- actions --------------------------------------------------------
    def enabled(self) -> list[tuple]:
        acts: list[tuple] = []
        for k, used in enumerate(self.sends_used):
            if not used:
                acts.append(("send", k))
        for wid in self.rt.transfer_engine.wire:
            acts.append(("deliver", wid))
        if self.drops_left > 0:
            for wid in self.rt.transfer_engine.wire:
                acts.append(("drop", wid))
        if self.dups_left > 0:
            for wid, msg in self.rt.transfer_engine.wire.items():
                if msg.dups_used == 0:
                    acts.append(("dup", wid))
        for ev in self.rt.engine.live_events():
            acts.append(("fire", ev.eid))
        if self.crashes_left > 0:
            for node in self.scenario.crash_candidates():
                if node not in self.crashed:
                    acts.append(("crash", node))
        return acts

    def apply(self, action: tuple) -> None:
        kind = action[0]
        try:
            if kind == "send":
                self._do_send(action[1])
            elif kind == "deliver":
                msg = self.rt.transfer_engine.wire.pop(action[1])
                self._arrow(msg, "deliver")
                if msg.on_deliver is not None:
                    msg.on_deliver()
            elif kind == "drop":
                msg = self.rt.transfer_engine.wire.pop(action[1])
                self.drops_left -= 1
                self._arrow(msg, "DROP")
            elif kind == "dup":
                msg = self.rt.transfer_engine.wire[action[1]]
                msg.dups_used = 1
                self.dups_left -= 1
                self._arrow(msg, "duplicate")
                if msg.on_deliver is not None:
                    msg.on_deliver()
            elif kind == "fire":
                ev = self.rt.engine.events[action[1]]
                self._note(self._event_node(ev), f"timer: {ev.label}")
                self.rt.engine.fire(action[1])
            elif kind == "crash":
                self._do_crash(action[1])
            else:  # pragma: no cover - defensive
                raise ValueError(f"unknown action {action!r}")
        except NotificationRetryExceededError as exc:
            self.aborted = True
            self.timeline.append(
                ("global", f"ABORT (loud): {exc}"))

    def _do_send(self, k: int) -> None:
        src, dst, uid = self.scenario.sends[k]
        self.sends_used[k] = True
        self.sends_issued[uid] = self.sends_issued.get(uid, 0) + 1
        if self.clears.get(uid, 0) >= self.opportunities.get(uid, 0):
            # a send after (or before) a clear opens a release window
            self.opportunities[uid] = self.opportunities.get(uid, 0) + 1
        self.timeline.append(
            ("msg", src, dst, f"send uid={uid}"))
        self.router.send(src, dst, uid, label=f"e{k}")

    def _do_crash(self, node: int) -> None:
        self.crashes_left -= 1
        self.crashed.add(node)
        old = self.router.epoch(node)
        # in-flight traffic TO the dead node goes down with its NIC;
        # traffic FROM it stays on the wire (epoch fencing's job)
        lost = [
            wid for wid, m in self.rt.transfer_engine.wire.items()
            if self.node_of_host.get(m.dst_host) == node
        ]
        for wid in lost:
            msg = self.rt.transfer_engine.wire.pop(wid)
            self._arrow(msg, "LOST-IN-CRASH")
        # successors homed on the dead node are evacuated
        for uid, nd in list(self.placement.items()):
            if nd == node:
                self.placement[uid] = self._next_live(node)
        self.timeline.append(
            ("global", f"node {node} crashes (epoch {old} -> {old + 1})"))
        self.router.node_down(node)

    def _next_live(self, dead: int) -> int:
        for off in range(1, self.scenario.n_nodes):
            cand = (dead + off) % self.scenario.n_nodes
            if cand not in self.crashed:
                return cand
        return dead  # pragma: no cover - all nodes dead

    def _event_node(self, ev: _FakeEvent) -> int:
        label = ev.label or ""
        for node, host in self.hosts.items():
            if host in label:
                return node
        return 0

    def _arrow(self, msg: _WireMessage, verb: str) -> None:
        src = self.node_of_host.get(msg.src_host, 0)
        dst = self.node_of_host.get(msg.dst_host, 0)
        meta = f" seq={msg.meta[1]}" if len(msg.meta) > 1 else ""
        self.timeline.append(
            ("msg", src, dst, f"{verb} {msg.category} {msg.label}{meta}"))

    # -- quiescence -----------------------------------------------------
    def check_quiescent(self) -> None:
        """Terminal-state liveness check (SAN-P002)."""
        for uid, issued in sorted(self.sends_issued.items()):
            if issued > 0 and self.clears.get(uid, 0) == 0:
                self._violate(
                    "SAN-P002",
                    f"quiescent state with successor uid={uid} never "
                    f"released: {issued} notification(s) sent, "
                    f"{self.router.pending(uid)} still pending, no wire "
                    "traffic or timers left to make progress",
                )

    # -- canonical state ------------------------------------------------
    def fingerprint(self) -> tuple:
        r = self.router
        wire = tuple(sorted(
            m.key() for m in self.rt.transfer_engine.wire.values()
        ))
        events = tuple(sorted(
            (str(e.kind), e.label) for e in self.rt.engine.live_events()
        ))
        inflight = tuple(sorted(
            (m.src_node, m.seq, m.attempts, m.acked, m.abandoned,
             m.timer is not None)
            for m in r._inflight.values()
        ))
        router_state = (
            tuple(sorted(r._pending.items())),
            tuple(sorted(r._cleared)),
            tuple(sorted(r._next_seq.items())),
            tuple(sorted(r._epoch.items())),
            tuple(sorted(r._recv_floor.items())),
            tuple(sorted(
                (k, tuple(sorted(v))) for k, v in r._received.items())),
            inflight,
        )
        harness_state = (
            tuple(self.sends_used),
            self.drops_left,
            self.dups_left,
            self.crashes_left,
            tuple(sorted(self.crashed)),
            tuple(sorted(self.placement.items())),
            tuple(sorted(self.clears.items())),
            tuple(sorted(self.opportunities.items())),
            tuple(sorted(
                (k, tuple(sorted(v))) for k, v in self.delivered.items())),
        )
        return (wire, events, router_state, harness_state)


# ----------------------------------------------------------------------
# Explorer
# ----------------------------------------------------------------------
def _replay(
    scenario: Scenario,
    router_factory: Optional[Callable[..., NotificationRouter]],
    path: Sequence[tuple],
) -> _Harness:
    h = _Harness(scenario, router_factory)
    for action in path:
        if h.violations or h.aborted:
            break
        h.apply(action)
    return h


def explore(
    scenario: Scenario,
    router_factory: Optional[Callable[..., NotificationRouter]] = None,
) -> ExplorationResult:
    """Exhaustive small-scope exploration of one scenario.

    Breadth-first over action sequences with canonical-state pruning,
    so the first counterexample found per property is (close to)
    minimal.  Paths that already violated a property or aborted are not
    expanded further.
    """
    violations: dict[str, Violation] = {}
    states = 0
    aborted = 0
    truncated = False

    root = _Harness(scenario, router_factory)
    visited = {root.fingerprint()}
    frontier: deque = deque([()])

    while frontier:
        if states >= scenario.max_states:
            truncated = True
            break
        path = frontier.popleft()
        h = _replay(scenario, router_factory, path)
        states += 1
        if h.violations:
            for v in h.violations:
                if v.code not in violations:
                    violations[v.code] = replace(v, path=tuple(path))
            continue
        if h.aborted:
            aborted += 1
            continue
        acts = h.enabled()
        if not acts:
            h.check_quiescent()
            for v in h.violations:
                if v.code not in violations:
                    violations[v.code] = replace(v, path=tuple(path))
            continue
        for action in acts:
            child = tuple(path) + (action,)
            ch = _replay(scenario, router_factory, child)
            fp = ch.fingerprint()
            if fp in visited:
                # a violating/aborted replay stops early, so its
                # fingerprint may collide with the pre-action state;
                # still must surface the violation
                if ch.violations:
                    for v in ch.violations:
                        if v.code not in violations:
                            violations[v.code] = replace(v, path=child)
                continue
            visited.add(fp)
            frontier.append(child)

    ordered = [violations[c] for c in PROPERTY_CODES if c in violations]
    return ExplorationResult(
        scenario=scenario,
        states=states,
        violations=ordered,
        aborted_paths=aborted,
        truncated=truncated,
    )


# ----------------------------------------------------------------------
# Message sequence diagram rendering
# ----------------------------------------------------------------------
_COL_WIDTH = 30


def render_msc(timeline: Sequence[TimelineEvent], n_nodes: int) -> str:
    """Render a timeline as an ASCII message sequence diagram."""
    width = _COL_WIDTH
    centers = [i * width + width // 2 for i in range(n_nodes)]
    total = n_nodes * width

    def pillars() -> list[str]:
        row = [" "] * total
        for c in centers:
            row[c] = "|"
        return row

    lines = []
    header = [" "] * total
    for i, c in enumerate(centers):
        name = f"node{i}"
        start = max(0, c - len(name) // 2)
        header[start:start + len(name)] = name
    lines.append("".join(header).rstrip())

    step = 0
    for entry in timeline:
        kind = entry[0]
        step += 1
        prefix = f"{step:3d}. "
        if kind == "global":
            text = entry[1]
            lines.append(f"{prefix}== {text} ==")
            continue
        row = pillars()
        if kind == "msg":
            _, src, dst, text = entry
            a, b = centers[src], centers[dst]
            if a == b:
                _place(row, a + 2, f"({text})")
            else:
                lo, hi = (a, b) if a < b else (b, a)
                for x in range(lo + 1, hi):
                    row[x] = "-"
                row[b - 1 if a < b else b + 1] = ">" if a < b else "<"
                _place_centered(row, (lo + hi) // 2, f" {text} ")
        else:  # note
            _, node, text = entry
            _place(row, centers[node] + 2, text)
        lines.append(prefix + "".join(row).rstrip())
    return "\n".join(lines)


def _place(row: list[str], start: int, text: str) -> None:
    end = start + len(text)
    if end > len(row):  # annotations may run past the last lifeline
        row.extend(" " * (end - len(row)))
    for i, ch in enumerate(text):
        pos = start + i
        if pos >= 0:
            row[pos] = ch


def _place_centered(row: list[str], center: int, text: str) -> None:
    _place(row, center - len(text) // 2, text)


# ----------------------------------------------------------------------
# Diagnostic entry point
# ----------------------------------------------------------------------
def check_protocol(
    scenarios: Optional[Sequence[Scenario]] = None,
    *,
    router_factory: Optional[Callable[..., NotificationRouter]] = None,
    small: bool = False,
) -> list[Diagnostic]:
    """Run the verification suite; violations become SAN-P diagnostics."""
    if scenarios is None:
        scenarios = default_scenarios(small=small)
    out: list[Diagnostic] = []
    for scenario in scenarios:
        result = explore(scenario, router_factory)
        for v in result.violations:
            out.append(Diagnostic(
                code=v.code,
                message=v.render(),
                file=None,
                region=f"scenario:{scenario.name}",
            ))
        if result.truncated:
            out.append(Diagnostic(
                code="SAN-P002",
                message=(
                    f"scenario {scenario.name!r} exploration truncated at "
                    f"{result.states} states (max_states="
                    f"{scenario.max_states}); verification is incomplete "
                    "— shrink the scenario or raise the cap"
                ),
                region=f"scenario:{scenario.name}",
            ))
    return out
