"""Static directive lint: AST inspection of ``@task`` / ``@target`` use.

OmpSs dependence semantics are only sound if the clauses describe what
the kernel body really does; the runtime cannot tell a missing clause
from an independent access.  This linter inspects Python sources —
without importing them — and flags the directive mistakes that would
silently build a racy DAG:

* **SAN-L001** — a clause names a parameter that is not in the task
  function's signature (the runtime would raise at *call* time; the lint
  catches it before any run),
* **SAN-L002** — a parameter is assigned or mutated in the body but
  declared only as ``inputs`` (an undeclared write: WAR/WAW edges are
  never built),
* **SAN-L003** — duplicate clause entries, or one parameter named by
  two different clauses,
* **SAN-L004** — an ``implements=`` version whose clause set disagrees
  with the main version's (all versions of a task must have the same
  dependence environment or the Table-I grouping is unsound).

Both directive spellings are understood::

    @target(device="cuda", implements=saxpy)
    @task(inputs=["a"], inouts=["b"])
    def saxpy_cuda(a, b): ...

    self.potrf = task(kernels.potrf_block, inouts=["A"], name="potrf_magma")
    target(device="smp", implements=self.potrf)(task(...))

Callable clause specs (lambdas computing region lists) cannot be checked
statically and are skipped.  A finding is waived by putting
``# san-ignore: SAN-Lxxx`` on the reported line.
"""

from __future__ import annotations

import ast
import os
from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence

from repro.sanitizer.diagnostics import Diagnostic
from repro.sanitizer.waivers import (
    Waiver,
    apply_waivers,
    scan_waivers,
    unused_waiver_diagnostics,
)

CLAUSE_KINDS = ("inputs", "outputs", "inouts")


# ----------------------------------------------------------------------
# Data model
# ----------------------------------------------------------------------
@dataclass
class TaskDecl:
    """One ``task(...)`` declaration found in a source file."""

    file: str
    line: int
    version_name: str
    #: clause kind -> literal parameter names, or None when the clause
    #: is absent / not statically analysable (callable spec)
    clauses: dict[str, Optional[list[str]]]
    #: whether every *present* clause is a literal name list
    literal: bool
    #: unresolved implements reference: ("name", str) | ("var", key) | None
    implements_ref: Optional[tuple[str, str]]
    #: resolved parameter names of the task function (None = unknown)
    params: Optional[list[str]]
    #: the function body, when it was resolvable in the scanned sources
    func_node: "Optional[ast.FunctionDef | ast.Lambda]" = None
    #: trailing name of the function reference (``kernels.gemm_tile`` ->
    #: ``"gemm_tile"``); used to resolve call-form signatures
    func_ref_name: Optional[str] = None

    @property
    def is_main(self) -> bool:
        return self.implements_ref is None

    def declared_names(self, kind: str) -> list[str]:
        names = self.clauses.get(kind)
        return list(names) if names else []


@dataclass
class _Module:
    path: str
    tree: ast.Module
    lines: list[str]
    #: function name -> defs in this module (last one wins on lookup)
    functions: dict[str, list[ast.FunctionDef]] = field(default_factory=dict)
    #: variable key ("x" / "self.x") -> version names bound to it
    bindings: dict[str, list[str]] = field(default_factory=dict)
    #: variable key -> literal dict kwargs (for ``task(fn, **shared)``)
    dict_vars: dict[str, dict[str, ast.expr]] = field(default_factory=dict)
    decls: list[TaskDecl] = field(default_factory=list)


# ----------------------------------------------------------------------
# AST helpers
# ----------------------------------------------------------------------
def _callee_name(call: ast.Call) -> Optional[str]:
    f = call.func
    if isinstance(f, ast.Name):
        return f.id
    if isinstance(f, ast.Attribute):
        return f.attr
    return None


def _is_task_call(node: ast.AST) -> bool:
    return isinstance(node, ast.Call) and _callee_name(node) == "task"


def _is_target_wrapper(node: ast.AST) -> bool:
    """``target(...)(task(...))``"""
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Call)
        and _callee_name(node.func) == "target"
        and len(node.args) == 1
        and _is_task_call(node.args[0])
    )


def _dotted(node: ast.expr) -> Optional[str]:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        base = _dotted(node.value)
        return None if base is None else f"{base}.{node.attr}"
    return None


def _str_const(node: Optional[ast.expr]) -> Optional[str]:
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    return None


def _name_list(node: ast.expr) -> Optional[list[str]]:
    """A literal ``["a", "b"]`` clause value, else None."""
    if isinstance(node, (ast.List, ast.Tuple)):
        out = []
        for el in node.elts:
            s = _str_const(el)
            if s is None:
                return None
            out.append(s)
        return out
    return None


def _func_params(fn: "ast.FunctionDef | ast.Lambda") -> list[str]:
    a = fn.args
    names = [arg.arg for arg in (*a.posonlyargs, *a.args, *a.kwonlyargs)]
    if a.vararg:
        names.append(a.vararg.arg)
    if a.kwarg:
        names.append(a.kwarg.arg)
    return names


# ----------------------------------------------------------------------
# Per-module scan
# ----------------------------------------------------------------------
class _Scanner(ast.NodeVisitor):
    def __init__(self, mod: _Module) -> None:
        self.mod = mod
        self._consumed: set[int] = set()

    # -- function definitions ------------------------------------------
    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self.mod.functions.setdefault(node.name, []).append(node)
        decl = self._decl_from_decorators(node)
        if decl is not None:
            self.mod.decls.append(decl)
            self.mod.bindings.setdefault(node.name, []).append(decl.version_name)
        self.generic_visit(node)

    visit_AsyncFunctionDef = visit_FunctionDef  # type: ignore[assignment]

    def _decl_from_decorators(self, node: ast.FunctionDef) -> Optional[TaskDecl]:
        task_call: Optional[ast.Call] = None
        target_call: Optional[ast.Call] = None
        for dec in node.decorator_list:
            if _is_task_call(dec):
                task_call = dec
                self._consumed.add(id(dec))
            elif isinstance(dec, ast.Name) and dec.id == "task":
                task_call = ast.Call(func=dec, args=[], keywords=[])
            elif isinstance(dec, ast.Call) and _callee_name(dec) == "target":
                target_call = dec
        if task_call is None:
            return None
        kw = self._keywords(task_call)
        if target_call is not None:
            kw.update(self._keywords(target_call))
        return self._build_decl(
            task_call, kw,
            default_name=node.name, func=node, line=node.lineno,
        )

    # -- assignments ----------------------------------------------------
    def visit_Assign(self, node: ast.Assign) -> None:
        value = node.value
        # shared-kwargs dicts: X = dict(inputs=[...], ...) / X = {...}
        as_dict = self._literal_dict(value)
        version = self._peek_version_name(value)
        for tgt in node.targets:
            key = _dotted(tgt)
            if key is None:
                continue
            if as_dict is not None:
                self.mod.dict_vars[key] = as_dict
            if version is not None:
                self.mod.bindings.setdefault(key, []).append(version)
        self.generic_visit(node)

    @staticmethod
    def _literal_dict(value: ast.expr) -> Optional[dict[str, ast.expr]]:
        if isinstance(value, ast.Call) and _callee_name(value) == "dict" and not value.args:
            out = {k.arg: k.value for k in value.keywords if k.arg is not None}
            return out if len(out) == len(value.keywords) else None
        if isinstance(value, ast.Dict):
            out = {}
            for k, v in zip(value.keys, value.values, strict=True):
                s = _str_const(k) if k is not None else None
                if s is None:
                    return None
                out[s] = v
            return out
        return None

    def _peek_version_name(self, value: ast.expr) -> Optional[str]:
        call = None
        if _is_task_call(value):
            call = value
        elif _is_target_wrapper(value):
            call = value.args[0]  # type: ignore[union-attr]
        if call is None:
            return None
        kw = self._keywords(call)
        name = _str_const(kw.get("name"))
        if name is not None:
            return name
        fn = call.args[0] if call.args else None
        return _dotted(fn).rsplit(".", 1)[-1] if fn is not None and _dotted(fn) else None

    # -- call-form declarations ----------------------------------------
    def visit_Call(self, node: ast.Call) -> None:
        if _is_target_wrapper(node):
            inner = node.args[0]
            assert isinstance(inner, ast.Call)
            self._consumed.add(id(inner))
            kw = self._keywords(inner)
            kw.update(self._keywords(node.func))  # type: ignore[arg-type]
            self.mod.decls.append(self._call_decl(inner, kw))
        elif _is_task_call(node) and id(node) not in self._consumed:
            self.mod.decls.append(self._call_decl(node, self._keywords(node)))
        self.generic_visit(node)

    def _call_decl(self, call: ast.Call, kw: dict[str, ast.expr]) -> TaskDecl:
        fn_ref = call.args[0] if call.args else None
        func: "Optional[ast.FunctionDef | ast.Lambda]" = None
        ref_name: Optional[str] = None
        default_name = "<anonymous>"
        if isinstance(fn_ref, ast.Lambda):
            func = fn_ref
        elif fn_ref is not None:
            dotted = _dotted(fn_ref)
            if dotted is not None:
                ref_name = dotted.rsplit(".", 1)[-1]
                default_name = ref_name
        decl = self._build_decl(call, kw, default_name=default_name,
                                func=func, line=call.lineno)
        decl.func_ref_name = ref_name
        return decl

    # -- shared construction -------------------------------------------
    def _keywords(self, call: ast.Call) -> dict[str, ast.expr]:
        """Keyword arguments of a call, with ``**shared_dict`` expanded."""
        out: dict[str, ast.expr] = {}
        for k in call.keywords:
            if k.arg is not None:
                out[k.arg] = k.value
                continue
            key = _dotted(k.value)
            expansion = self.mod.dict_vars.get(key) if key else None
            if expansion:
                out.update(expansion)
        return out

    def _build_decl(
        self,
        call: ast.Call,
        kw: dict[str, ast.expr],
        *,
        default_name: str,
        func: "Optional[ast.FunctionDef | ast.Lambda]",
        line: int,
    ) -> TaskDecl:
        clauses: dict[str, Optional[list[str]]] = {}
        literal = True
        for kind in CLAUSE_KINDS:
            value = kw.get(kind)
            if value is None:
                clauses[kind] = None
            else:
                names = _name_list(value)
                clauses[kind] = names
                if names is None:
                    literal = False

        imp = kw.get("implements")
        implements_ref: Optional[tuple[str, str]] = None
        if imp is not None and not (
            isinstance(imp, ast.Constant) and imp.value is None
        ):
            s = _str_const(imp)
            if s is not None:
                implements_ref = ("name", s)
            else:
                key = _dotted(imp)
                implements_ref = ("var", key) if key else ("var", "<unknown>")

        version_name = _str_const(kw.get("name")) or default_name
        return TaskDecl(
            file=self.mod.path,
            line=line,
            version_name=version_name,
            clauses=clauses,
            literal=literal,
            implements_ref=implements_ref,
            params=_func_params(func) if func is not None else None,
            func_node=func,
        )


# ----------------------------------------------------------------------
# Body mutation analysis (SAN-L002)
# ----------------------------------------------------------------------
def _root_name(node: ast.expr) -> Optional[str]:
    """The base name of an assignment target (``p``, ``p[i]``, ``p[i][j]``,
    ``p.attr``)."""
    while isinstance(node, (ast.Subscript, ast.Attribute, ast.Starred)):
        node = node.value
    return node.id if isinstance(node, ast.Name) else None


def _mutated_names(fn: "ast.FunctionDef | ast.Lambda") -> dict[str, int]:
    """Names assigned/mutated anywhere in a function body -> first line."""
    out: dict[str, int] = {}
    body = fn.body if isinstance(fn.body, list) else []

    def note(target: ast.expr, line: int) -> None:
        if isinstance(target, (ast.Tuple, ast.List)):
            for el in target.elts:
                note(el, line)
            return
        name = _root_name(target)
        if name is not None and name not in out:
            out[name] = line

    for node in ast.walk(ast.Module(body=body, type_ignores=[])):
        if isinstance(node, ast.Assign):
            for tgt in node.targets:
                note(tgt, node.lineno)
        elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
            if not (isinstance(node, ast.AnnAssign) and node.value is None):
                note(node.target, node.lineno)
        elif isinstance(node, ast.For):
            note(node.target, node.lineno)
    return out


# ----------------------------------------------------------------------
# Lint driver
# ----------------------------------------------------------------------
def _iter_py_files(paths: Iterable[str]) -> list[str]:
    files: list[str] = []
    for p in paths:
        if os.path.isdir(p):
            for root, dirs, names in os.walk(p):
                dirs[:] = sorted(d for d in dirs if d != "__pycache__")
                files.extend(
                    os.path.join(root, n) for n in sorted(names) if n.endswith(".py")
                )
        elif p.endswith(".py"):
            files.append(p)
        else:
            raise FileNotFoundError(f"not a Python file or directory: {p}")
    return files


class DirectiveLinter:
    """Runs the four SAN-L checks over a set of source files."""

    def __init__(self, files: Sequence[str]) -> None:
        self.modules: list[_Module] = []
        for path in files:
            with open(path, encoding="utf-8") as fh:
                source = fh.read()
            tree = ast.parse(source, filename=path)
            mod = _Module(path=path, tree=tree, lines=source.splitlines())
            _Scanner(mod).visit(tree)
            self.modules.append(mod)
        # cross-module function index (e.g. apps reference kernels.*)
        self._global_functions: dict[str, list[ast.FunctionDef]] = {}
        for mod in self.modules:
            for name, defs in mod.functions.items():
                self._global_functions.setdefault(name, []).extend(defs)
        self._resolve_functions()

    # ------------------------------------------------------------------
    def _resolve_functions(self) -> None:
        """Fill in params/body for call-form decls (``task(kernels.f, ...)``)."""
        for mod in self.modules:
            for decl in mod.decls:
                if decl.params is not None:
                    continue
                fn = self._lookup_function(mod, decl)
                if fn is not None:
                    decl.params = _func_params(fn)
                    decl.func_node = fn

    def _lookup_function(self, mod: _Module, decl: TaskDecl) -> Optional[ast.FunctionDef]:
        if decl.func_ref_name is None:
            return None
        candidates = mod.functions.get(decl.func_ref_name, [])
        if not candidates:
            candidates = self._global_functions.get(decl.func_ref_name, [])
        if not candidates:
            return None
        # ambiguous cross-module name: only usable if all defs agree on
        # the signature (the body check then uses the last definition)
        params = {tuple(_func_params(c)) for c in candidates}
        return candidates[-1] if len(params) == 1 else None


def lint_files(
    files: Sequence[str], *, waive: bool = True
) -> list[Diagnostic]:
    """Run the SAN-L checks over ``files``.

    With ``waive`` (the default) ``# san-ignore`` comments are applied
    and waivers whose SAN-L codes suppressed nothing are reported as
    SAN-L005.  The static driver passes ``waive=False`` to collect raw
    findings and do waiver accounting centrally across all analyses.
    """
    linter = DirectiveLinter(files)
    diags = collect_lint(linter)
    if not waive:
        return diags
    waivers = collect_waivers(linter)
    kept = apply_waivers(diags, waivers)
    kept.extend(unused_waiver_diagnostics(waivers, code_prefixes=("SAN-L",)))
    return kept


def collect_lint(linter: DirectiveLinter) -> list[Diagnostic]:
    """Raw (unwaived) SAN-L001..L004 findings for a built linter."""
    diags: list[Diagnostic] = []
    all_decls = [(m, d) for m in linter.modules for d in m.decls]

    # -- L001 / L003 / L002 per declaration -----------------------------
    for mod, decl in all_decls:
        diags.extend(_check_clause_names(mod, decl))
        diags.extend(_check_duplicates(mod, decl))
        diags.extend(_check_body_writes(mod, decl))

    # -- L004 across versions -------------------------------------------
    diags.extend(_check_implements_consistency(linter, all_decls))
    return diags


def collect_waivers(linter: DirectiveLinter) -> list[Waiver]:
    """Every ``# san-ignore`` comment in the linter's scanned modules."""
    out: list[Waiver] = []
    for mod in linter.modules:
        out.extend(scan_waivers(mod.path, mod.lines))
    return out


def _check_clause_names(mod: _Module, decl: TaskDecl) -> list[Diagnostic]:
    if decl.params is None:
        return []
    out = []
    params = set(decl.params)
    for kind in CLAUSE_KINDS:
        for name in decl.declared_names(kind):
            if name not in params:
                out.append(Diagnostic(
                    code="SAN-L001",
                    message=(
                        f"task {decl.version_name!r}: {kind} clause names "
                        f"{name!r}, which is not a parameter of the task "
                        f"function (signature: {', '.join(decl.params)})"
                    ),
                    file=mod.path, line=decl.line,
                ))
    return out


def _check_duplicates(mod: _Module, decl: TaskDecl) -> list[Diagnostic]:
    out = []
    seen: dict[str, str] = {}
    for kind in CLAUSE_KINDS:
        names = decl.declared_names(kind)
        for i, name in enumerate(names):
            if name in names[:i]:
                out.append(Diagnostic(
                    code="SAN-L003",
                    message=(
                        f"task {decl.version_name!r}: parameter {name!r} "
                        f"appears twice in the {kind} clause"
                    ),
                    file=mod.path, line=decl.line,
                ))
            elif name in seen and seen[name] != kind:
                out.append(Diagnostic(
                    code="SAN-L003",
                    message=(
                        f"task {decl.version_name!r}: parameter {name!r} is "
                        f"named by both {seen[name]} and {kind}; use a single "
                        "inout clause instead"
                    ),
                    file=mod.path, line=decl.line,
                ))
            seen.setdefault(name, kind)
    return out


def _check_body_writes(mod: _Module, decl: TaskDecl) -> list[Diagnostic]:
    if decl.func_node is None:
        return []
    inputs_only = (
        set(decl.declared_names("inputs"))
        - set(decl.declared_names("outputs"))
        - set(decl.declared_names("inouts"))
    )
    if not inputs_only:
        return []
    mutated = _mutated_names(decl.func_node)
    out = []
    for name in sorted(inputs_only):
        if name in mutated:
            out.append(Diagnostic(
                code="SAN-L002",
                message=(
                    f"task {decl.version_name!r}: parameter {name!r} is "
                    f"declared inputs-only but the body assigns it (line "
                    f"{mutated[name]}); declare it inout or output"
                ),
                file=mod.path, line=mutated[name],
            ))
    return out


def _clause_signature(decl: TaskDecl) -> Optional[frozenset]:
    """Position-based clause set for cross-version comparison.

    Falls back to names when the function signature is unknown; returns
    None when any present clause is non-literal.
    """
    if not decl.literal:
        return None
    entries = []
    index = {p: i for i, p in enumerate(decl.params)} if decl.params else None
    for kind in CLAUSE_KINDS:
        for name in decl.declared_names(kind):
            key: object = index[name] if index is not None and name in index else name
            entries.append((kind, key))
    return frozenset(entries)


def _check_implements_consistency(
    linter: DirectiveLinter, all_decls: list[tuple[_Module, TaskDecl]]
) -> list[Diagnostic]:
    mains: dict[str, list[TaskDecl]] = {}
    for _, decl in all_decls:
        if decl.is_main:
            mains.setdefault(decl.version_name, []).append(decl)

    out = []
    for mod, decl in all_decls:
        if decl.is_main:
            continue
        sig = _clause_signature(decl)
        if sig is None:
            continue
        kind, ref = decl.implements_ref  # type: ignore[misc]
        if kind == "name":
            main_names = [ref]
        else:
            main_names = mod.bindings.get(ref, [])
        candidates = [
            m
            for name in main_names
            for m in mains.get(name, [])
            if m is not decl
        ]
        comparable = [m for m in candidates if _clause_signature(m) is not None]
        if not comparable:
            continue
        if all(_clause_signature(m) != sig for m in comparable):
            main = comparable[0]
            out.append(Diagnostic(
                code="SAN-L004",
                message=(
                    f"version {decl.version_name!r} (implements "
                    f"{main.version_name!r}) declares clauses "
                    f"{_render_clauses(decl)} but the main version declares "
                    f"{_render_clauses(main)}; all versions of a task must "
                    "share one dependence environment"
                ),
                file=mod.path, line=decl.line,
            ))
    return out


def _render_clauses(decl: TaskDecl) -> str:
    parts = []
    for kind in CLAUSE_KINDS:
        names = decl.declared_names(kind)
        if names:
            parts.append(f"{kind}={names}")
    return "{" + ", ".join(parts) + "}"


def lint_paths(paths: Iterable[str]) -> list[Diagnostic]:
    """Lint every ``.py`` file under the given files/directories."""
    files = _iter_py_files(paths)
    if not files:
        return []
    return lint_files(files)
