"""Transfer engine and the paper's three transfer counters.

Every region copy crosses a link of the machine; the engine serialises
transfers per directed link (a PCIe direction is one DMA stream) and
accounts each one in the classification the paper's §V-A uses:

* **Input Tx** — host space to any device space ("the total amount of
  data transferred from the host memory space to any of the GPU
  devices.  If a piece of data is transferred to two different devices,
  both transfers are taken into account."),
* **Output Tx** — any device space to host,
* **Device Tx** — between two device spaces.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import TYPE_CHECKING, Callable, Optional

from repro.memory.directory import TransferRequest
from repro.resilience.recovery import TransferRetryExceededError
from repro.sim.engine import EventKind, SimEngine
from repro.sim.topology import HOST_SPACE, Machine
from repro.sim.trace import Trace

if TYPE_CHECKING:  # pragma: no cover
    from repro.resilience.recovery import ResilienceManager


class TxCategory(Enum):
    INPUT = "input_tx"    # host -> device
    OUTPUT = "output_tx"  # device -> host
    DEVICE = "device_tx"  # device -> device

    @staticmethod
    def classify(src: str, dst: str, host: str = HOST_SPACE) -> "TxCategory":
        if src == host and dst != host:
            return TxCategory.INPUT
        if src != host and dst == host:
            return TxCategory.OUTPUT
        if src != host and dst != host:
            return TxCategory.DEVICE
        raise ValueError(f"host-to-host transfer makes no sense ({src} -> {dst})")


@dataclass
class TransferStats:
    """Bytes and counts per category — the data behind Figures 7/10/13."""

    bytes_by_category: dict[TxCategory, int] = field(
        default_factory=lambda: {c: 0 for c in TxCategory}
    )
    count_by_category: dict[TxCategory, int] = field(
        default_factory=lambda: {c: 0 for c in TxCategory}
    )

    def record(self, src: str, dst: str, nbytes: int, host: str = HOST_SPACE) -> None:
        # classify() inlined — record runs once per transfer hop
        if src == host:
            if dst == host:
                raise ValueError(
                    f"host-to-host transfer makes no sense ({src} -> {dst})"
                )
            cat = TxCategory.INPUT
        elif dst == host:
            cat = TxCategory.OUTPUT
        else:
            cat = TxCategory.DEVICE
        self.bytes_by_category[cat] += nbytes
        self.count_by_category[cat] += 1

    @property
    def input_tx(self) -> int:
        return self.bytes_by_category[TxCategory.INPUT]

    @property
    def output_tx(self) -> int:
        return self.bytes_by_category[TxCategory.OUTPUT]

    @property
    def device_tx(self) -> int:
        return self.bytes_by_category[TxCategory.DEVICE]

    @property
    def total_bytes(self) -> int:
        return sum(self.bytes_by_category.values())

    @property
    def total_count(self) -> int:
        return sum(self.count_by_category.values())

    def as_dict(self) -> dict[str, int]:
        return {c.value: self.bytes_by_category[c] for c in TxCategory}

    def __repr__(self) -> str:
        gb = 1024**3
        return (
            f"TransferStats(input={self.input_tx / gb:.3f} GB, "
            f"output={self.output_tx / gb:.3f} GB, "
            f"device={self.device_tx / gb:.3f} GB, n={self.total_count})"
        )


class TransferEngine:
    """Schedules region copies on the machine's links.

    Each directed link is a serial resource: a transfer requested while
    the link is busy queues behind the transfers already issued (FIFO,
    matching one DMA stream per PCIe direction).  Completion runs an
    optional callback — the runtime uses it to mark the destination copy
    valid in the directory.
    """

    def __init__(
        self,
        engine: SimEngine,
        machine: Machine,
        *,
        stats: Optional[TransferStats] = None,
        trace: Optional[Trace] = None,
        host: str = HOST_SPACE,
        resilience: Optional["ResilienceManager"] = None,
    ) -> None:
        self.engine = engine
        self.machine = machine
        self.stats = stats if stats is not None else TransferStats()
        self.trace = trace
        self.host = host
        #: fault-injection hook: consulted per attempt per hop; failed
        #: attempts are retried with deterministic exponential backoff
        self.resilience = resilience
        # per-link (or per channel-group) list of channel-free times;
        # links sharing a ``Link.group`` (a node's NIC) share one entry
        self._channel_free_at: dict[object, list[float]] = {}
        # interned trace worker names per directed link (issue() runs
        # once per hop; building the f-string each time showed up in
        # profiles)
        self._link_worker: dict[tuple[str, str], str] = {}
        #: simulated control messages (cluster notification protocol)
        self.messages_sent = 0
        self.messages_delivered = 0
        self.message_bytes = 0
        self.messages_dropped = 0   # lost in flight (fault injection)
        self.messages_lost = 0      # delivered to a dead node's NIC
        #: memory spaces whose NIC endpoint is down (crashed nodes):
        #: message deliveries into them are swallowed silently — the
        #: sender only learns via its own retransmit timeout
        self.down_spaces: set[str] = set()

    # ------------------------------------------------------------------
    def set_spaces_down(self, spaces: "set[str]") -> None:
        self.down_spaces |= spaces

    def set_spaces_up(self, spaces: "set[str]") -> None:
        self.down_spaces -= spaces

    # ------------------------------------------------------------------
    def _channel_key(self, link) -> object:
        return link.group if link.group is not None else (link.src, link.dst)

    def _hop_time(self, link, nbytes: int, start: float) -> float:
        """One hop's duration, stretched by any active link degradation."""
        if self.resilience is None:
            return link.transfer_time(nbytes)
        bw_f, lat_f = self.resilience.link_factors(link.src, link.dst, start)
        return link.latency * lat_f + (nbytes / link.bandwidth) * bw_f

    def link_free_at(self, src: str, dst: str) -> float:
        """Earliest time any channel of the link is free."""
        key: object = (src, dst)
        if self.machine.has_link(src, dst):
            key = self._channel_key(self.machine.link(src, dst))
        channels = self._channel_free_at.get(key)
        return min(channels) if channels else 0.0

    def issue(
        self,
        request: TransferRequest,
        *,
        earliest: Optional[float] = None,
        on_complete: Optional[Callable[[], None]] = None,
    ) -> float:
        """Issue a transfer; returns its completion (simulated) time.

        ``earliest`` is the earliest moment the transfer may begin
        (defaults to now); the actual start also waits for the link(s).
        Endpoints without a direct link are *routed* (staged copies via
        intermediate spaces — the cluster case); each hop serialises on
        its own link and is accounted separately.  The completion
        callback fires as a simulation event exactly at the returned
        time.

        With a resilience manager attached, each hop attempt may be
        failed by the fault plan; failed attempts are retried after a
        deterministic exponential backoff, bounded by the recovery
        policy's ``transfer_max_retries`` (then
        :class:`TransferRetryExceededError`).  A failed attempt still
        occupies the link for the full hop time and is accounted in the
        transfer counters — the bytes moved before the error was
        detected.
        """
        nbytes = request.region.nbytes
        now = self.engine.now
        ready = now if earliest is None else max(earliest, now)
        end = ready
        resilience = self.resilience
        stats = self.stats
        trace = self.trace
        host = self.host
        link_worker = self._link_worker
        for link in self.machine.route(request.src, request.dst):
            key = self._channel_key(link)
            channels = self._channel_free_at.get(key)
            if channels is None:
                channels = self._channel_free_at[key] = [0.0] * link.channels
            attempt = 1
            while True:
                # earliest-free channel, lowest index on ties (strict <
                # scan ≡ min over (free time, index))
                ch = 0
                free = channels[0]
                for i in range(1, len(channels)):
                    if channels[i] < free:
                        free = channels[i]
                        ch = i
                start = end if end > free else free
                if resilience is None:
                    hop_end = start + link.transfer_time(nbytes)
                    failed = False
                else:
                    bw_f, lat_f = resilience.link_factors(link.src, link.dst, start)
                    # parenthesised like _hop_time: float addition is not
                    # associative and the traces are pinned bit-for-bit
                    hop_end = start + (
                        link.latency * lat_f + (nbytes / link.bandwidth) * bw_f
                    )
                    failed = resilience.transfer_fault(link.src, link.dst)
                channels[ch] = hop_end
                stats.record(link.src, link.dst, nbytes, host)
                if trace is not None:
                    lkey = (link.src, link.dst)
                    worker = link_worker.get(lkey)
                    if worker is None:
                        worker = link_worker[lkey] = f"link:{link.src}->{link.dst}"
                    trace.add(
                        start,
                        hop_end,
                        worker=worker,
                        category="transfer" if not failed else "transfer-fault",
                        label=request.region.label,
                        meta=(nbytes,),
                    )
                if not failed:
                    end = hop_end
                    break
                assert resilience is not None
                if attempt > self.resilience.max_transfer_retries:
                    raise TransferRetryExceededError(
                        f"transfer of {request.region.label!r} over "
                        f"{link.src}->{link.dst} failed {attempt} times "
                        f"(retry budget {self.resilience.max_transfer_retries})"
                    )
                end = hop_end + self.resilience.transfer_retry(attempt)
                attempt += 1
        if on_complete is not None:
            self.engine.schedule(
                end,
                on_complete,
                kind=EventKind.TRANSFER_END,
                label=f"xfer {request.region.label} {request.src}->{request.dst}",
            )
        return end

    # ------------------------------------------------------------------
    def send_message(
        self,
        src: str,
        dst: str,
        nbytes: int,
        *,
        label: str = "",
        meta: tuple = (),
        category: str = "notify",
        on_deliver: Optional[Callable[[], None]] = None,
    ) -> float:
        """Send a simulated control message from ``src`` to ``dst``.

        The cluster notification protocol rides on this: the message
        occupies the same link channels as data (it shares the NIC) but
        is *not* counted in the data-transfer statistics — it shows up in
        the trace as a ``category`` record (``"notify"`` for
        notifications, ``"ack"`` for acknowledgements) on worker
        ``node:<src>-><dst>`` and in the ``messages_*`` counters.
        Returns the scheduled delivery time; ``on_deliver`` fires then.

        With a resilience manager attached, the transmission may suffer
        a :class:`~repro.resilience.faults.MessageFault`: *dropped*
        messages occupy the wire but never deliver (traced as
        ``"<category>-drop"``), *duplicated* messages deliver twice (the
        copy traced as ``"<category>-dup"``), *delayed* messages deliver
        past their wire arrival.  A delivery into a space listed in
        :attr:`down_spaces` (a crashed node's NIC) is swallowed — the
        sender only learns via its own timeout.
        """
        if nbytes < 0:
            raise ValueError("cannot send a negative-size message")
        end = self.engine.now
        for link in self.machine.route(src, dst):
            key = self._channel_key(link)
            channels = self._channel_free_at.get(key)
            if channels is None:
                channels = self._channel_free_at[key] = [0.0] * link.channels
            ch = 0
            free = channels[0]
            for i in range(1, len(channels)):
                if channels[i] < free:
                    free = channels[i]
                    ch = i
            start = end if end > free else free
            hop_end = start + self._hop_time(link, nbytes, start)
            channels[ch] = hop_end
            end = hop_end
        self.messages_sent += 1
        self.message_bytes += nbytes
        fault = (
            self.resilience.message_fault(src, dst, label)
            if self.resilience is not None
            else None
        )
        if fault is not None and fault.drop:
            self.messages_dropped += 1
            if self.trace is not None:
                self.trace.add(
                    self.engine.now,
                    end,
                    worker=f"node:{src}->{dst}",
                    category=f"{category}-drop",
                    label=label,
                    meta=meta,
                )
            return end
        delivered_at = end + (fault.delay if fault is not None else 0.0)
        if self.trace is not None:
            self.trace.add(
                self.engine.now,
                delivered_at,
                worker=f"node:{src}->{dst}",
                category=category,
                label=label,
                meta=meta,
            )

        def _deliver() -> None:
            if dst in self.down_spaces:
                self.messages_lost += 1
                return
            self.messages_delivered += 1
            if on_deliver is not None:
                on_deliver()

        self.engine.schedule(
            delivered_at,
            _deliver,
            kind=EventKind.NOTIFY,
            label=f"{category} {label} {src}->{dst}",
        )
        if fault is not None and fault.duplicate:
            if self.trace is not None:
                self.trace.add(
                    self.engine.now,
                    delivered_at,
                    worker=f"node:{src}->{dst}",
                    category=f"{category}-dup",
                    label=label,
                    meta=meta,
                )
            self.engine.schedule(
                delivered_at,
                _deliver,
                kind=EventKind.NOTIFY,
                label=f"{category}-dup {label} {src}->{dst}",
            )
        return delivered_at
