"""Memory spaces.

A :class:`MemorySpace` is one physical address space: the host memory
(shared by all SMP cores) or one GPU's device memory.  Spaces track how
many bytes of region copies they currently hold so the cache manager
can enforce device-memory capacity.
"""

from __future__ import annotations

from typing import Optional


class MemorySpace:
    """One physical address space with optional finite capacity."""

    def __init__(self, name: str, capacity: Optional[int] = None) -> None:
        """``capacity=None`` means unbounded (the 24 GB host space is
        treated as unbounded relative to the working sets we simulate)."""
        if capacity is not None and capacity <= 0:
            raise ValueError("capacity must be positive or None")
        self.name = name
        self.capacity = capacity
        self.used_bytes = 0

    @property
    def is_bounded(self) -> bool:
        return self.capacity is not None

    def free_bytes(self) -> Optional[int]:
        if self.capacity is None:
            return None
        return self.capacity - self.used_bytes

    def fits(self, nbytes: int) -> bool:
        """Whether ``nbytes`` more would fit without eviction."""
        return self.capacity is None or self.used_bytes + nbytes <= self.capacity

    def allocate(self, nbytes: int) -> None:
        if nbytes < 0:
            raise ValueError("cannot allocate negative bytes")
        if not self.fits(nbytes):
            raise MemoryError(
                f"space {self.name!r}: allocating {nbytes} B exceeds capacity "
                f"({self.used_bytes}/{self.capacity} B used)"
            )
        self.used_bytes += nbytes

    def release(self, nbytes: int) -> None:
        if nbytes < 0:
            raise ValueError("cannot release negative bytes")
        if nbytes > self.used_bytes:
            raise ValueError(
                f"space {self.name!r}: releasing {nbytes} B but only "
                f"{self.used_bytes} B allocated"
            )
        self.used_bytes -= nbytes

    def __repr__(self) -> str:
        cap = "inf" if self.capacity is None else str(self.capacity)
        return f"MemorySpace({self.name!r}, used={self.used_bytes}/{cap})"
