"""Coherence directory.

The runtime replicates data regions across memory spaces; the directory
records, per region, which spaces hold a *valid* copy and whether the
authoritative (dirty) copy lives away from the region's home space.

Protocol (write-invalidate, matching the Nanos++ software cache):

* a region starts valid only in its home space (the host),
* a read on space S requires a valid copy in S — if missing, the
  directory emits a :class:`TransferRequest` from a chosen source,
* a write on space S makes S the *only* valid holder and marks the
  region dirty when S is not the home space,
* flushing (taskwait semantics) copies every dirty region back to its
  home space.

Invariants (property-tested):

* every registered region is valid somewhere at all times,
* a dirty region's owner space is always in the valid set,
* immediately after a write, exactly one space is valid.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Mapping, Optional

from repro.runtime.dataregion import DataRegion


@dataclass(frozen=True)
class TransferRequest:
    """A region copy that must be performed: ``src`` space -> ``dst`` space."""

    region: DataRegion
    src: str
    dst: str

    def __post_init__(self) -> None:
        if self.src == self.dst:
            raise ValueError("transfer with identical endpoints")


@dataclass
class _Entry:
    region: DataRegion
    valid: set[str]
    dirty_owner: Optional[str]  # space holding the sole authoritative copy
    #: every copy died with a crashed node; a recomputation is underway
    #: (the empty-valid invariant is suspended until it lands)
    recovering: bool = False


class Directory:
    """Tracks validity of region copies across memory spaces."""

    def __init__(self, home_space: str = "host") -> None:
        self.home_space = home_space
        # keyed by the interned region id (DataRegion.rid); directory
        # lookups run once per task dependence clause and per transfer,
        # so int keys beat hashing structured tuples.  Anything that
        # must iterate deterministically sorts by repr(region.key) —
        # rid assignment order is process-history dependent.
        self._entries: dict[int, _Entry] = {}
        # optional cluster awareness (set_topology): when present,
        # choose_source prefers same-node copies and spreads remote
        # pulls across the hosts holding valid replicas
        self._node_of_space: Optional[Mapping[str, int]] = None
        self._host_spaces: frozenset[str] = frozenset()

    def set_topology(
        self, node_of_space: Mapping[str, int], host_spaces: "set[str] | frozenset[str]"
    ) -> None:
        """Teach the directory which node owns each space (cluster mode).

        Until this is called the directory stays node-oblivious: every
        cold read is staged from the home space (node 0), which is what
        makes the *global* scheduler's cluster runs bottleneck on node
        0's NIC.  The sharded cluster scheduler calls this to unlock
        same-node reuse and source spreading.
        """
        self._node_of_space = dict(node_of_space)
        self._host_spaces = frozenset(host_spaces)

    # ------------------------------------------------------------------
    # Registration & queries
    # ------------------------------------------------------------------
    def register(self, region: DataRegion) -> None:
        """Make the directory aware of ``region`` (idempotent).

        New regions are valid in the home space only.
        """
        self._entry(region)

    def _entry(self, region: DataRegion) -> _Entry:
        entry = self._entries.get(region.rid)
        if entry is None:
            entry = self._entries[region.rid] = _Entry(
                region, {self.home_space}, None
            )
        return entry

    def known(self, region: DataRegion) -> bool:
        return region.rid in self._entries

    def regions(self) -> list[DataRegion]:
        return [e.region for e in self._entries.values()]

    def valid_spaces(self, region: DataRegion) -> set[str]:
        return set(self._entry(region).valid)

    def valid_view(self, region: DataRegion) -> "set[str]":
        """The live valid-space set — read-only by contract; callers
        that only iterate avoid the defensive copy of
        :meth:`valid_spaces` (the cluster staging scan is per-access)."""
        return self._entry(region).valid

    def is_valid(self, region: DataRegion, space: str) -> bool:
        return space in self._entry(region).valid

    def register_valid_in(self, region: DataRegion, space: str) -> bool:
        """Register ``region`` (idempotent) and report whether ``space``
        already holds a valid copy — one entry lookup instead of the
        register + is_valid pair on the cluster push hot path."""
        return space in self._entry(region).valid

    def dirty_owner(self, region: DataRegion) -> Optional[str]:
        return self._entry(region).dirty_owner

    # ------------------------------------------------------------------
    # Protocol actions
    # ------------------------------------------------------------------
    def choose_source(self, region: DataRegion, dst: str) -> str:
        """Pick the space to copy from when ``dst`` needs a valid copy.

        Deterministic: prefer the home space when it holds a valid copy
        (host-staged copies match how Nanos++ routed most traffic);
        otherwise the lexicographically first valid space.  Peer GPU
        sources are what produce the paper's *Device Tx* counter.

        With a cluster topology attached (:meth:`set_topology`) the
        preference order becomes: a valid copy on the *destination's own
        node* (its host first), then a valid copy on any node host —
        spread deterministically across holders so concurrent consumers
        don't all hammer one NIC — then the node-oblivious fallback.
        """
        entry = self._entry(region)
        if dst in entry.valid:
            raise ValueError(f"{region.label!r} is already valid in {dst!r}")
        if not entry.valid:
            raise ValueError(
                f"{region.label!r} has no valid copy anywhere "
                "(lost to a node crash and not yet recovered)"
            )
        if self._node_of_space is not None:
            dst_node = self._node_of_space.get(dst)
            same_node = sorted(
                s for s in entry.valid if self._node_of_space.get(s) == dst_node
            )
            if same_node:
                host = next((s for s in same_node if s in self._host_spaces), None)
                return host if host is not None else same_node[0]
            hosts = sorted(s for s in entry.valid if s in self._host_spaces)
            if hosts:
                idx = zlib.crc32(repr((region.key, dst)).encode()) % len(hosts)
                return hosts[idx]
        if self.home_space in entry.valid:
            return self.home_space
        return min(entry.valid)

    def reads_needed(self, region: DataRegion, space: str) -> Optional[TransferRequest]:
        """Transfer needed (if any) so ``space`` can read ``region``."""
        if space in self._entry(region).valid:
            return None
        return TransferRequest(region, self.choose_source(region, space), space)

    def mark_valid(self, region: DataRegion, space: str) -> None:
        """Record a completed copy into ``space`` (does not change dirtiness)."""
        self._entry(region).valid.add(space)

    def note_write(self, region: DataRegion, space: str) -> None:
        """A task on ``space`` wrote ``region``: invalidate all other copies."""
        entry = self._entry(region)
        entry.valid = {space}
        entry.dirty_owner = space if space != self.home_space else None
        entry.recovering = False  # a fresh write supersedes any recovery

    def drop_copy(self, region: DataRegion, space: str) -> None:
        """Evict the copy held by ``space`` (cache eviction of clean data).

        Dropping the last valid copy — or the dirty owner's copy — is a
        protocol violation: the caller must write back first.
        """
        entry = self._entry(region)
        if space not in entry.valid:
            raise ValueError(f"{region.label!r} holds no copy in {space!r}")
        if entry.dirty_owner == space:
            raise ValueError(
                f"cannot drop the dirty copy of {region.label!r} from {space!r}; "
                "write back to the home space first"
            )
        if entry.valid == {space}:
            raise ValueError(f"cannot drop the only valid copy of {region.label!r}")
        entry.valid.discard(space)

    def writeback_request(self, region: DataRegion) -> Optional[TransferRequest]:
        """Transfer that would clean the region (dirty owner -> home)."""
        entry = self._entry(region)
        if entry.dirty_owner is None:
            return None
        return TransferRequest(region, entry.dirty_owner, self.home_space)

    def note_writeback_done(self, region: DataRegion) -> None:
        """The dirty copy has been copied home; region is now clean."""
        entry = self._entry(region)
        if entry.dirty_owner is None:
            raise ValueError(f"{region.label!r} is not dirty")
        entry.valid.add(self.home_space)
        entry.dirty_owner = None

    def flush_requests(self) -> list[TransferRequest]:
        """All transfers a full ``taskwait`` flush needs (deterministic order)."""
        out: list[TransferRequest] = []
        for entry in sorted(self._entries.values(), key=lambda e: repr(e.region.key)):
            req = self.writeback_request(entry.region)
            if req is not None:
                out.append(req)
        return out

    # ------------------------------------------------------------------
    # Node-crash handling
    # ------------------------------------------------------------------
    def invalidate_spaces(self, spaces: "set[str]") -> list[DataRegion]:
        """Every copy held by ``spaces`` is gone (the node crashed).

        Removes the dead spaces from all valid sets.  A dirty owner that
        died is repaired: if the home space survives among the valid
        copies the region is simply clean again, otherwise a surviving
        valid space is promoted to owner.  Regions left with *no* valid
        copy are flagged ``recovering`` and returned — the runtime
        schedules their recomputation; until :meth:`note_recovered` (or
        a superseding write) lands, :meth:`check_invariants` tolerates
        their empty valid set.

        Deterministic: regions are visited in sorted key order.
        """
        lost: list[DataRegion] = []
        for entry in sorted(self._entries.values(), key=lambda e: repr(e.region.key)):
            if not (entry.valid & spaces) and entry.dirty_owner not in spaces:
                continue
            entry.valid -= spaces
            if entry.dirty_owner in spaces:
                entry.dirty_owner = None
                if entry.valid and self.home_space not in entry.valid:
                    entry.dirty_owner = min(entry.valid)
            if not entry.valid:
                entry.recovering = True
                lost.append(entry.region)
        return lost

    def note_recovered(self, region: DataRegion, space: str) -> None:
        """A lost region's recomputation materialised a copy in ``space``."""
        entry = self._entry(region)
        entry.valid.add(space)
        entry.dirty_owner = space if space != self.home_space else None
        entry.recovering = False

    def is_recovering(self, region: DataRegion) -> bool:
        return self._entry(region).recovering

    # ------------------------------------------------------------------
    def check_invariants(self) -> None:
        """Raise :class:`AssertionError` on any violated protocol invariant."""
        for entry in self._entries.values():
            if not entry.valid and not entry.recovering:
                raise AssertionError(f"{entry.region.label!r} is valid nowhere")
            if entry.dirty_owner is not None and entry.dirty_owner not in entry.valid:
                raise AssertionError(
                    f"{entry.region.label!r}: dirty owner {entry.dirty_owner!r} "
                    "lacks a valid copy"
                )
