"""Per-space software cache with LRU eviction.

Each GPU memory space has finite capacity (6 GB on an M2090); the cache
manager tracks which region copies are resident per space, pins regions
needed by queued or running tasks, and evicts least-recently-used
unpinned copies when an allocation would overflow.

Evicting a *dirty* copy (the only authoritative one) first writes it
back to the host over the link — those write-backs are real transfers
and show up in the Output Tx counter, exactly as in the Nanos++ cache.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

from repro.memory.directory import Directory
from repro.memory.space import MemorySpace
from repro.memory.transfers import TransferEngine
from repro.runtime.dataregion import DataRegion
from repro.sim.devices import GPUDevice
from repro.sim.topology import HOST_SPACE, Machine


@dataclass
class CacheStats:
    evictions: int = 0
    writebacks: int = 0
    writeback_bytes: int = 0


class _SpaceCache:
    """Residency + LRU + pin bookkeeping for one memory space."""

    def __init__(self, space: MemorySpace) -> None:
        self.space = space
        # both keyed by the interned region id (DataRegion.rid)
        self.lru: "OrderedDict[int, DataRegion]" = OrderedDict()
        self.pins: dict[int, int] = {}

    def is_resident(self, region: DataRegion) -> bool:
        return region.rid in self.lru

    def touch(self, region: DataRegion) -> None:
        if region.rid in self.lru:
            self.lru.move_to_end(region.rid)


class CacheManager:
    """Manages residency across all of a machine's memory spaces."""

    def __init__(
        self,
        machine: Machine,
        directory: Directory,
        transfer_engine: TransferEngine,
    ) -> None:
        self.machine = machine
        self.directory = directory
        self.transfers = transfer_engine
        self.stats = CacheStats()
        self._caches: dict[str, _SpaceCache] = {}
        # region id -> spaces holding a resident copy; lets
        # invalidate_stale_everywhere visit actual holders instead of
        # scanning every space of the machine per write (the scan was a
        # top profile frame at 16 nodes = 49 spaces)
        self._resident: dict[int, set[str]] = {}
        gpu_capacity: dict[str, int] = {}
        for dev in machine.devices:
            if isinstance(dev, GPUDevice):
                gpu_capacity[dev.memory_space] = dev.memory_bytes
        for name in machine.spaces():
            capacity = gpu_capacity.get(name)  # host & unknown spaces unbounded
            self._caches[name] = _SpaceCache(MemorySpace(name, capacity))

    # ------------------------------------------------------------------
    def space(self, name: str) -> MemorySpace:
        return self._cache(name).space

    def _cache(self, name: str) -> _SpaceCache:
        try:
            return self._caches[name]
        except KeyError:
            raise KeyError(f"unknown memory space {name!r}") from None

    def is_resident(self, space: str, region: DataRegion) -> bool:
        return self._cache(space).is_resident(region)

    def resident_bytes(self, space: str) -> int:
        return self._cache(space).space.used_bytes

    # ------------------------------------------------------------------
    # Pinning (regions in use by queued/running tasks must not evict)
    # ------------------------------------------------------------------
    def pin(self, space: str, region: DataRegion) -> None:
        cache = self._cache(space)
        cache.pins[region.rid] = cache.pins.get(region.rid, 0) + 1

    def unpin(self, space: str, region: DataRegion) -> None:
        cache = self._cache(space)
        n = cache.pins.get(region.rid, 0)
        if n <= 0:
            raise ValueError(f"unpin of unpinned region {region.label!r} in {space!r}")
        if n == 1:
            del cache.pins[region.rid]
        else:
            cache.pins[region.rid] = n - 1

    def is_pinned(self, space: str, region: DataRegion) -> bool:
        return self._cache(space).pins.get(region.rid, 0) > 0

    # ------------------------------------------------------------------
    # Residency
    # ------------------------------------------------------------------
    def ensure_resident(self, space: str, region: DataRegion) -> None:
        """Allocate room for ``region`` in ``space``, evicting if needed.

        Idempotent for already-resident regions (refreshes LRU order).
        Raises :class:`MemoryError` when the pinned working set alone
        exceeds the space's capacity — a genuinely unschedulable task.
        """
        cache = self._cache(space)
        if cache.is_resident(region):
            cache.touch(region)
            return
        if not cache.space.fits(region.nbytes):
            self._evict_until_fits(cache, region.nbytes)
        cache.space.allocate(region.nbytes)
        cache.lru[region.rid] = region
        self._resident.setdefault(region.rid, set()).add(space)

    def _evict_until_fits(self, cache: _SpaceCache, nbytes: int) -> None:
        space_name = cache.space.name
        for key in list(cache.lru):
            if cache.space.fits(nbytes):
                return
            if cache.pins.get(key, 0) > 0:
                continue
            self._evict(space_name, cache.lru[key])
        if not cache.space.fits(nbytes):
            raise MemoryError(
                f"space {space_name!r}: cannot fit {nbytes} B — "
                f"{cache.space.used_bytes} B resident and all pinned"
            )

    def _evict(self, space: str, region: DataRegion) -> None:
        cache = self._cache(space)
        if self.directory.is_valid(region, space):
            if self.directory.dirty_owner(region) == space:
                # Write the authoritative copy home before dropping it.
                req = self.directory.writeback_request(region)
                assert req is not None and req.src == space
                self.transfers.issue(req)
                self.directory.note_writeback_done(region)
                self.stats.writebacks += 1
                self.stats.writeback_bytes += region.nbytes
            if self.directory.valid_spaces(region) != {space}:
                self.directory.drop_copy(region, space)
            else:
                # Sole clean copy outside home should not happen (home is
                # unbounded and clean data always re-fetchable); guard
                # against protocol drift loudly.
                raise AssertionError(
                    f"evicting sole valid clean copy of {region.label!r} from {space!r}"
                )
        del cache.lru[region.rid]
        self._discard_resident(region.rid, space)
        cache.space.release(region.nbytes)
        self.stats.evictions += 1

    def purge_space(self, name: str) -> None:
        """Forget everything about ``name`` (the space's node crashed).

        Residency, pins and the allocation count are reset — a rejoined
        node comes back with a cold cache.  No directory interaction:
        the caller already invalidated the dead space's copies.
        """
        cache = self._cache(name)
        for rid, region in list(cache.lru.items()):
            cache.space.release(region.nbytes)
            self._discard_resident(rid, name)
        cache.lru.clear()
        cache.pins.clear()

    def invalidate(self, space: str, region: DataRegion) -> None:
        """Drop a (now stale) resident copy without directory interaction.

        Called after another space wrote the region: the directory has
        already removed ``space`` from the valid set; the cache frees
        the garbage copy.
        """
        cache = self._cache(space)
        if cache.is_resident(region):
            if cache.pins.get(region.rid, 0) > 0:
                # A queued task still holds a pin; keep the allocation —
                # the copy will be refreshed by that task's own transfer.
                return
            del cache.lru[region.rid]
            self._discard_resident(region.rid, space)
            cache.space.release(region.nbytes)

    def invalidate_stale_everywhere(self, region: DataRegion, writer_space: str) -> None:
        """Free stale copies of ``region`` in every space but the writer's.

        The host space keeps its allocation (host memory is the backing
        store; "stale" host data is just overwritten on write-back).
        """
        holders = self._resident.get(region.rid)
        if not holders:
            return
        # sorted for determinism (set iteration order varies with the
        # per-process str hash seed); invalidations are independent, but
        # never rely on that
        for name in sorted(holders):
            if name != writer_space and name != HOST_SPACE:
                if not self.directory.is_valid(region, name):
                    self.invalidate(name, region)

    def _discard_resident(self, rid: int, space: str) -> None:
        holders = self._resident.get(rid)
        if holders is not None:
            holders.discard(space)
            if not holders:
                del self._resident[rid]
