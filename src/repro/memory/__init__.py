"""Memory subsystem: spaces, coherence, transfers, device caches.

OmpSs assumes multiple physical address spaces; the runtime replicates
data across them and keeps the copies coherent, counting every transfer.
The paper's evaluation classifies transferred bytes into *Input Tx*
(host -> device), *Output Tx* (device -> host) and *Device Tx*
(device -> device); :class:`~repro.memory.transfers.TransferStats`
reproduces those three counters exactly.
"""

from repro.memory.space import MemorySpace
from repro.memory.directory import Directory, TransferRequest
from repro.memory.transfers import TransferEngine, TransferStats, TxCategory
from repro.memory.cache import CacheManager

__all__ = [
    "MemorySpace",
    "Directory",
    "TransferRequest",
    "TransferEngine",
    "TransferStats",
    "TxCategory",
    "CacheManager",
]
