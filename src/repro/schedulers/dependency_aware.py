"""Dependency-aware scheduler.

"A simple implementation of a scheduler that tries to find chains of
dependencies and schedule consecutive tasks of the same chain to the
same device.  Its decisions are fast, but in some cases cannot fully
exploit data locality." (§V-A2)

Policy: when a task becomes ready because a predecessor just finished on
worker W, and W can run the task's main implementation, keep the chain
on W.  Tasks with no usable chain hint (or whose hint cannot run the
main version) go to the least-loaded capable worker.  Like every
pre-versioning OmpSs scheduler it ignores ``implements`` versions and
runs main implementations only.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.runtime.task import TaskInstance
from repro.schedulers.base import Scheduler

if TYPE_CHECKING:  # pragma: no cover
    from repro.runtime.worker import Worker


class DependencyAwareScheduler(Scheduler):
    name = "dep"
    supports_versions = False

    def __init__(self) -> None:
        super().__init__()
        # successor uid -> the worker that finished a predecessor last;
        # set in task_finished, which the runtime calls *before* it
        # releases the successors, so the hint is ready by task_ready.
        self._chain_hint: dict[int, "Worker"] = {}

    def task_ready(self, t: TaskInstance) -> None:
        assert self.rt is not None
        version = self.main_version(t.definition)
        candidates = self.require_capable_workers(version)
        hint = self._chain_hint.pop(t.uid, None)
        fallback = self.least_loaded(candidates)
        if (
            hint is not None
            and hint.alive
            and version.runs_on(hint.device.kind)
            and hint.load() <= fallback.load()
        ):
            # Keep the chain on the predecessor's device — but only while
            # that does not pile work onto an already-longer queue (a
            # chain hint must not defeat load balance entirely).
            worker = hint
        else:
            worker = fallback
        self.rt.dispatch(t, worker, version)

    def task_finished(self, t: TaskInstance, worker: "Worker", measured: float) -> None:
        for succ in t.successors:
            self._chain_hint[succ.uid] = worker
