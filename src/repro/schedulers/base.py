"""Scheduler plug-in interface.

A scheduler receives ready tasks from the runtime and must dispatch each
one — choose a worker and a task version — by calling
:meth:`~repro.runtime.runtime.OmpSsRuntime.dispatch`.  After every task
execution the runtime reports the measured duration back through
:meth:`Scheduler.task_finished`; only the versioning scheduler uses that
feedback, but the hook is part of the generic interface.

``supports_versions`` mirrors the paper's footnote 1: the pre-existing
OmpSs schedulers ignore the ``implements`` clause and always run the
main implementation.  The runtime refuses to start a hybrid application
(one whose main implementation cannot run anywhere on the machine) under
such a scheduler — the same failure a real OmpSs run would hit.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Optional

from repro.runtime.task import TaskDefinition, TaskInstance, TaskVersion

if TYPE_CHECKING:  # pragma: no cover
    from repro.runtime.runtime import OmpSsRuntime
    from repro.runtime.worker import Worker


class Scheduler:
    """Base class for scheduling policies."""

    #: Plug-in name used by the registry / environment variable.
    name: str = "base"

    #: Whether the policy understands ``implements`` versions.
    supports_versions: bool = False

    def __init__(self) -> None:
        self.rt: Optional["OmpSsRuntime"] = None
        # device-kind bitmask -> capable workers; the worker set is fixed
        # for a run, so this is a pure cache (hot path of every dispatch).
        # Keyed by the version's kind mask, not the kind tuple: hashing a
        # tuple of enum members calls Enum.__hash__ per element, which is
        # a Python-level function and dominated dispatch profiles.
        self._capable_cache: dict[int, list["Worker"]] = {}

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def bind(self, runtime: "OmpSsRuntime") -> None:
        """Attach to a runtime before the first task is submitted."""
        self.rt = runtime
        self._capable_cache.clear()

    @property
    def workers(self) -> list["Worker"]:
        assert self.rt is not None, "scheduler not bound to a runtime"
        return self.rt.workers

    # ------------------------------------------------------------------
    # Hooks
    # ------------------------------------------------------------------
    def task_submitted(self, t: TaskInstance) -> None:
        """A task entered the dependence graph (not necessarily ready).

        Called once per task in submission order, after its dependence
        edges are recorded but before any :meth:`task_ready`.  The
        cluster scheduler assigns shards here; the default is a no-op.
        """

    def task_ready(self, t: TaskInstance) -> None:
        """A task's dependences are satisfied; dispatch it now."""
        raise NotImplementedError

    def steal_ready_task(
        self, accept: Callable[[TaskInstance], bool]
    ) -> Optional[TaskInstance]:
        """Give up one undispatched ready task for work stealing.

        ``accept`` filters tasks the thief can actually run.  Policies
        that hold ready tasks in a pool (versioning) override this to
        pop the youngest acceptable task; policies that dispatch
        immediately have nothing to steal and return ``None``.
        """
        return None

    def task_started(self, t: TaskInstance, worker: "Worker") -> None:
        """A dispatched task left the queue and began executing."""

    def task_finished(self, t: TaskInstance, worker: "Worker", measured: float) -> None:
        """Execution feedback (measured duration in seconds)."""

    # ------------------------------------------------------------------
    # Resilience hooks (fault recovery; defaults are safe no-ops)
    # ------------------------------------------------------------------
    def task_speculated(
        self, t: TaskInstance, worker: "Worker", version: TaskVersion
    ) -> None:
        """A speculative copy ``t`` of a straggling task is about to be
        dispatched to ``worker`` (straggler recovery).  The copy reports
        back through :meth:`task_finished` if it wins the race or
        :meth:`task_requeued` if it is withdrawn, so policies that keep
        per-dispatch bookkeeping should mirror their dispatch-side
        accounting here."""

    def task_requeued(self, t: TaskInstance, worker: "Worker") -> None:
        """A dispatched task was pulled back before finishing (fault
        recovery).  Called with ``t.chosen_version`` still set; the task
        re-enters via :meth:`task_ready` afterwards.  Policies that keep
        per-dispatch bookkeeping (busy estimates, assignment counts)
        must undo it here."""

    def worker_down(self, worker: "Worker") -> None:
        """``worker`` failed permanently.  :meth:`capable_workers`
        already excludes dead workers; override to drop extra state."""

    def worker_up(self, worker: "Worker") -> None:
        """A quarantined worker was re-admitted; pool-based policies
        should re-pump so waiting tasks can use it."""

    # ------------------------------------------------------------------
    # Helpers shared by the non-versioning policies
    # ------------------------------------------------------------------
    def main_version(self, definition: TaskDefinition) -> TaskVersion:
        return definition.main_version

    def capable_workers(self, version: TaskVersion) -> list["Worker"]:
        """Live workers whose device can run ``version`` (deterministic
        order).  Permanently failed workers are excluded; quarantined
        ones are not (quarantine is temporary — use :meth:`dispatchable`
        at dispatch time)."""
        key: int = version._kind_mask  # type: ignore[attr-defined]
        cached = self._capable_cache.get(key)
        if cached is None:
            cached = [w for w in self.workers if w.device.kind.mask & key]
            self._capable_cache[key] = cached
        for w in cached:
            if not w.alive:
                return [x for x in cached if x.alive]
        return cached

    def dispatchable(self, worker: "Worker") -> bool:
        """Whether ``worker`` accepts dispatches right now (alive and
        not quarantined at the current simulated time)."""
        assert self.rt is not None, "scheduler not bound to a runtime"
        return worker.available(self.rt.engine.now)

    def require_capable_workers(self, version: TaskVersion) -> list["Worker"]:
        ws = self.capable_workers(version)
        if not ws:
            kinds = ",".join(k.value for k in version.device_kinds)
            raise RuntimeError(
                f"no worker on this machine can run version {version.name!r} "
                f"(device clause: {kinds}); scheduler {self.name!r} only runs main "
                "implementations" if not self.supports_versions else
                f"no worker can run version {version.name!r} (device clause: {kinds})"
            )
        return ws

    def least_loaded(self, workers: list["Worker"]) -> "Worker":
        """Fewest queued tasks; ties broken by worker name (deterministic)."""
        return min(workers, key=lambda w: (w.load(), w.name))
