"""Breadth-first scheduler.

Nanos++'s default policy: a single central ready queue in FIFO order;
idle workers pick the oldest ready task they can run.  No locality, no
chains, no version awareness — the baseline the smarter policies are
measured against.  (The paper's evaluation uses dep-aware and affinity;
``bf`` is included for completeness of the scheduler plug-in set.)
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Deque

from repro.runtime.task import TaskInstance
from repro.schedulers.base import Scheduler

if TYPE_CHECKING:  # pragma: no cover
    from repro.runtime.worker import Worker


class BreadthFirstScheduler(Scheduler):
    name = "bf"
    supports_versions = False

    def __init__(self) -> None:
        super().__init__()
        self._ready: Deque[TaskInstance] = deque()
        self._pumping = False

    def task_ready(self, t: TaskInstance) -> None:
        # validate early so an unrunnable task fails at submission
        self.require_capable_workers(self.main_version(t.definition))
        self._ready.append(t)
        self._pump()

    def task_started(self, t: TaskInstance, worker: "Worker") -> None:
        self._pump()

    def task_finished(self, t: TaskInstance, worker: "Worker", measured: float) -> None:
        self._pump()

    def task_requeued(self, t: TaskInstance, worker: "Worker") -> None:
        # nothing to undo: bf keeps no per-dispatch bookkeeping
        pass

    def worker_up(self, worker: "Worker") -> None:
        self._pump()

    def _pump(self) -> None:
        if self._pumping:
            return
        assert self.rt is not None
        self._pumping = True
        try:
            while self._ready:
                placed = False
                for i, t in enumerate(self._ready):
                    version = self.main_version(t.definition)
                    idle = [
                        w
                        for w in self.capable_workers(version)
                        if w.load() == 0 and self.dispatchable(w)
                    ]
                    if not idle:
                        continue
                    # a retried task prefers a worker it has not yet
                    # failed on, when one is idle
                    worker = min(
                        idle,
                        key=lambda w: ((version.name, w.name) in t.failed_pairs, w.name),
                    )
                    del self._ready[i]
                    self.rt.dispatch(t, worker, version)
                    placed = True
                    break
                if not placed:
                    break
        finally:
            self._pumping = False
