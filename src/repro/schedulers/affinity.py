"""Affinity scheduler.

"For each task, it evaluates the amount of data that should be
transferred to a certain device in order to execute the task.  The
scheduler chooses the device where the minimum amount of data must be
transferred.  We can exploit data locality this way, and reduce
significantly the time spent in memory transfers." (§V-A2)

Ties on missing bytes are broken by queue load (so an idle device steals
work from a loaded one — the behaviour §V-B2 observes on Cholesky) and
then by worker name for determinism.  Ignores ``implements`` versions.
"""

from __future__ import annotations

from repro.runtime.task import TaskInstance
from repro.schedulers.base import Scheduler


class AffinityScheduler(Scheduler):
    name = "affinity"
    supports_versions = False

    #: A worker may run ahead of the least-loaded one by at most this many
    #: queued tasks before locality stops winning; beyond it, an idle
    #: worker "steals" the task even though that costs extra transfers
    #: (the behaviour §V-B2 describes on Cholesky).
    load_slack: int = 2

    def task_ready(self, t: TaskInstance) -> None:
        assert self.rt is not None
        version = self.main_version(t.definition)
        candidates = self.require_capable_workers(version)
        min_load = min(w.load() for w in candidates)
        balanced = [w for w in candidates if w.load() <= min_load + self.load_slack]
        worker = min(
            balanced,
            key=lambda w: (self.rt.missing_read_bytes(t, w.space), w.load(), w.name),
        )
        self.rt.dispatch(t, worker, version)
