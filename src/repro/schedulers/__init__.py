"""Scheduling policies, pluggable like Nanos++ scheduler plug-ins.

Three policies reproduce the paper's evaluation:

* :class:`~repro.schedulers.dependency_aware.DependencyAwareScheduler` —
  follows dependence chains to keep successive tasks on one device,
* :class:`~repro.schedulers.affinity.AffinityScheduler` — sends each
  task where the least data must move,
* :class:`~repro.core.versioning.VersioningScheduler` — the paper's
  contribution (lives in :mod:`repro.core`).

Only the versioning scheduler honours ``implements`` versions; the other
two run each task's *main* implementation only (paper §III, footnote 1).
Select policies by name through :func:`~repro.schedulers.registry.create_scheduler`
or the ``REPRO_SCHEDULER`` environment variable, mirroring how Nanos++
selects plug-ins via ``NX_SCHEDULE``.
"""

from repro.schedulers.base import Scheduler
from repro.schedulers.breadth_first import BreadthFirstScheduler
from repro.schedulers.dependency_aware import DependencyAwareScheduler
from repro.schedulers.affinity import AffinityScheduler
from repro.schedulers.registry import (
    available_schedulers,
    create_scheduler,
    register_scheduler,
    scheduler_from_env,
)

__all__ = [
    "Scheduler",
    "BreadthFirstScheduler",
    "DependencyAwareScheduler",
    "AffinityScheduler",
    "available_schedulers",
    "create_scheduler",
    "register_scheduler",
    "scheduler_from_env",
]
