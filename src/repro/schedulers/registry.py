"""Scheduler plug-in registry.

Nanos++ loads scheduling policies as plug-ins selected by the
``NX_SCHEDULE`` environment variable, so the same binary can run under
different schedulers without recompiling (§III).  This registry is the
equivalent: policies register under one or more names, and
:func:`create_scheduler` / :func:`scheduler_from_env` instantiate them.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Any, Callable, Iterator

from repro.schedulers.base import Scheduler

ENV_VAR = "REPRO_SCHEDULER"

_FACTORIES: dict[str, Callable[..., Scheduler]] = {}

#: factory -> (default options, list collecting created instances);
#: installed by the scheduler_defaults() context manager.
_DEFAULTS: dict[Callable[..., Scheduler], tuple[dict[str, Any], list[Scheduler]]] = {}


def register_scheduler(*names: str) -> Callable[[type], type]:
    """Class decorator: register a Scheduler subclass under ``names``."""

    def wrap(cls: type) -> type:
        if not issubclass(cls, Scheduler):
            raise TypeError(f"{cls.__name__} is not a Scheduler")
        for n in names:
            key = n.lower()
            if key in _FACTORIES:
                raise ValueError(f"scheduler name {key!r} already registered")
            _FACTORIES[key] = cls
        return cls

    return wrap


def available_schedulers() -> list[str]:
    _ensure_builtin()
    return sorted(_FACTORIES)


def canonical_schedulers() -> list[str]:
    """One name per registered policy class (aliases removed).

    The conformance suite iterates this so every distinct policy is
    exercised exactly once; the first-registered name of each class is
    the canonical one.
    """
    _ensure_builtin()
    seen: dict[Callable[..., Scheduler], str] = {}
    for name, factory in _FACTORIES.items():
        seen.setdefault(factory, name)
    return sorted(seen.values())


def create_scheduler(name: str, **options: Any) -> Scheduler:
    """Instantiate a registered policy by name (case-insensitive)."""
    _ensure_builtin()
    try:
        factory = _FACTORIES[name.lower()]
    except KeyError:
        raise ValueError(
            f"unknown scheduler {name!r}; available: {', '.join(available_schedulers())}"
        ) from None
    entry = _DEFAULTS.get(factory)
    if entry is not None:
        defaults, created = entry
        instance = factory(**{**defaults, **options})
        created.append(instance)
        return instance
    return factory(**options)


@contextmanager
def scheduler_defaults(name: str, **options: Any) -> Iterator[list[Scheduler]]:
    """Merge ``options`` into every :func:`create_scheduler` call for the
    policy registered under ``name`` (any of its aliases) while the
    context is active.  Explicit per-call options win over the defaults.

    Yields the list of instances the context created (appended live), so
    callers can collect state from the schedulers of runs they did not
    construct themselves — e.g. ``repro.reproduce`` absorbing learned
    profile tables into a store after a figure sweep::

        with scheduler_defaults("versioning", hints=snapshot) as created:
            run_figure()
        tables = [s.table for s in created]
    """
    _ensure_builtin()
    try:
        factory = _FACTORIES[name.lower()]
    except KeyError:
        raise ValueError(
            f"unknown scheduler {name!r}; available: {', '.join(available_schedulers())}"
        ) from None
    created: list[Scheduler] = []
    previous = _DEFAULTS.get(factory)
    _DEFAULTS[factory] = (dict(options), created)
    try:
        yield created
    finally:
        if previous is None:
            _DEFAULTS.pop(factory, None)
        else:
            _DEFAULTS[factory] = previous


def scheduler_from_env(default: str = "dep", **options: Any) -> Scheduler:
    """Build the scheduler selected by ``$REPRO_SCHEDULER`` (or ``default``)."""
    return create_scheduler(os.environ.get(ENV_VAR, default), **options)


_BOOTSTRAPPED = False


def _ensure_builtin() -> None:
    """Register built-in policies lazily (avoids import cycles)."""
    global _BOOTSTRAPPED
    if _BOOTSTRAPPED:
        return
    _BOOTSTRAPPED = True
    from repro.schedulers.affinity import AffinityScheduler
    from repro.schedulers.breadth_first import BreadthFirstScheduler
    from repro.schedulers.dependency_aware import DependencyAwareScheduler
    from repro.core.versioning import VersioningScheduler
    from repro.core.locality import LocalityVersioningScheduler
    from repro.cluster.sharded import ShardedClusterScheduler

    for names, cls in (
        (("bf", "breadth-first"), BreadthFirstScheduler),
        (("dep", "dependency-aware"), DependencyAwareScheduler),
        (("affinity", "aff"), AffinityScheduler),
        (("versioning", "ver"), VersioningScheduler),
        (("versioning-locality", "ver-loc"), LocalityVersioningScheduler),
        (("cluster", "sharded"), ShardedClusterScheduler),
    ):
        for n in names:
            if n not in _FACTORIES:
                _FACTORIES[n] = cls
