"""Sharded cluster scheduling (distributed-manager style).

Partitions the dependence graph across the nodes of a
``cluster_machine``, runs one scheduler instance per node, and bridges
cross-shard dependence edges with simulated notification messages plus
pushed region transfers — overlapped with scheduling.  See
:mod:`repro.cluster.sharded` for the full protocol description.
"""

from repro.cluster.partition import (
    AffinityPartition,
    BlockPartition,
    HashPartition,
    PARTITION_POLICIES,
    PartitionPolicy,
    make_partitioner,
)
from repro.cluster.protocol import ClusterStats, NotificationRouter, NOTIFY_BYTES
from repro.cluster.sharded import NodeRuntimeView, ShardedClusterScheduler

__all__ = [
    "AffinityPartition",
    "BlockPartition",
    "HashPartition",
    "PARTITION_POLICIES",
    "PartitionPolicy",
    "make_partitioner",
    "ClusterStats",
    "NotificationRouter",
    "NOTIFY_BYTES",
    "NodeRuntimeView",
    "ShardedClusterScheduler",
]
