"""Graph-partitioning policies for sharded cluster scheduling.

A partitioner maps each submitted task to the node (shard) that will
schedule it.  Assignment happens online, in submission order, exactly
once per task — the sharded scheduler may later *move* a task between
shards via work stealing, but the partitioner is never consulted twice.

Three policies, mirroring the options distributed task-based runtimes
actually ship:

* ``hash`` — multiplicative hash of the submission sequence number;
  stateless, perfectly balanced in expectation, oblivious to data.
* ``block`` — contiguous blocks of ``block_size`` consecutive
  submissions per node, round-robin over nodes; preserves submission
  locality (neighbouring tasks usually share data).
* ``affinity`` — keyed on region ownership: the node that owns the most
  bytes among the task's accessed regions wins; writes claim ownership
  for the assignee, so producer-consumer chains stay on one node.
  Falls back to the least-loaded shard for ownerless tasks.

All policies are deterministic: no wall-clock, no ``hash()`` (which is
seeded per process), no iteration over unordered containers.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Hashable, Optional, Sequence

if TYPE_CHECKING:  # pragma: no cover
    from repro.runtime.task import TaskInstance

#: Knuth's multiplicative constant (2^32 / phi), for the hash policy.
_HASH_MULT = 2654435761

PARTITION_POLICIES = ("hash", "block", "affinity")


class PartitionPolicy:
    """Base class: assign each submitted task to a node."""

    name = "base"

    def __init__(self, n_nodes: int) -> None:
        if n_nodes < 1:
            raise ValueError("a partition needs at least one node")
        self.n_nodes = n_nodes

    def assign(
        self, t: "TaskInstance", seq: int, allowed: Sequence[int], loads: Sequence[int]
    ) -> int:
        """Pick a node for task ``t``.

        ``seq`` is the run-local submission number (1-based), ``allowed``
        the nodes with a worker capable of running some version of ``t``
        (never empty, ascending), ``loads`` the per-node count of tasks
        assigned so far (indexed by node id).
        """
        raise NotImplementedError

    def note_assigned(self, t: "TaskInstance", node: int) -> None:
        """Observe the final placement (including steals)."""

    def note_node_down(self, node: int) -> None:
        """A node crashed: forget any state steering work toward it."""


class HashPartition(PartitionPolicy):
    name = "hash"

    def assign(
        self, t: "TaskInstance", seq: int, allowed: Sequence[int], loads: Sequence[int]
    ) -> int:
        idx = ((seq * _HASH_MULT) & 0xFFFFFFFF) % len(allowed)
        return allowed[idx]


class BlockPartition(PartitionPolicy):
    name = "block"

    def __init__(self, n_nodes: int, *, block_size: int = 8) -> None:
        super().__init__(n_nodes)
        if block_size < 1:
            raise ValueError("block_size must be at least 1")
        self.block_size = block_size

    def assign(
        self, t: "TaskInstance", seq: int, allowed: Sequence[int], loads: Sequence[int]
    ) -> int:
        idx = ((seq - 1) // self.block_size) % len(allowed)
        return allowed[idx]


class AffinityPartition(PartitionPolicy):
    """Place each task where most of its data already lives.

    Ownership is tracked per region key in assigned-bytes: a task's
    write regions become owned by its node.  The candidate scores are
    the bytes of the task's regions owned by each allowed node; the
    best-scoring node wins (ties to the lower node id), and a task
    touching no owned data goes to the least-loaded allowed shard.
    """

    name = "affinity"

    def __init__(self, n_nodes: int) -> None:
        super().__init__(n_nodes)
        self._owner: dict[Hashable, int] = {}

    def assign(
        self, t: "TaskInstance", seq: int, allowed: Sequence[int], loads: Sequence[int]
    ) -> int:
        score = {n: 0 for n in allowed}
        for acc in t.accesses:
            owner = self._owner.get(acc.region.key)
            if owner is not None and owner in score:
                score[owner] += acc.region.nbytes
        best = max(allowed, key=lambda n: (score[n], -n))
        if score[best] > 0:
            return best
        return min(allowed, key=lambda n: (loads[n], n))

    def note_assigned(self, t: "TaskInstance", node: int) -> None:
        for acc in t.accesses:
            if acc.writes:
                self._owner[acc.region.key] = node

    def note_node_down(self, node: int) -> None:
        # a dead node owns nothing: its data is gone (or recovering at
        # the home space), so affinity must stop steering work to it
        self._owner = {k: n for k, n in self._owner.items() if n != node}


def make_partitioner(name: str, n_nodes: int, **options) -> PartitionPolicy:
    """Instantiate a partition policy by name."""
    factories = {
        "hash": HashPartition,
        "block": BlockPartition,
        "affinity": AffinityPartition,
    }
    try:
        factory = factories[name.lower()]
    except KeyError:
        raise ValueError(
            f"unknown partition policy {name!r}; "
            f"available: {', '.join(PARTITION_POLICIES)}"
        ) from None
    return factory(n_nodes, **options)
