"""Inter-node protocol layer: notifications for cross-shard edges.

When a dependence edge crosses shards, the predecessor's node sends one
simulated notification message to the successor's node over the same
network links the data uses (they share the NIC), and pushes the edge's
region toward the successor's host memory *overlapped* with scheduling.
The successor is released to its node-local scheduler only when

* every predecessor has finished (the usual dependence rule, enforced
  by the runtime's dependence graph), **and**
* every cross-shard notification for it has been *delivered*.

Data transfers are not awaited here — a worker's start already waits on
in-flight input copies, so the node dispatches ready tasks while remote
outputs are still on the wire (the Bosch et al. overlap).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable

if TYPE_CHECKING:  # pragma: no cover
    from repro.runtime.runtime import OmpSsRuntime

#: Simulated size of one notification message (bytes on the wire).
NOTIFY_BYTES = 256


@dataclass
class ClusterStats:
    """Counters behind the per-node utilization / strong-scaling report."""

    n_nodes: int = 0
    local_edges: int = 0
    cross_edges: int = 0
    notifications_sent: int = 0
    notifications_delivered: int = 0
    pushes: int = 0
    push_bytes: int = 0
    steals: int = 0
    tasks_per_node: dict[int, int] = field(default_factory=dict)

    def as_dict(self) -> dict:
        return {
            "n_nodes": self.n_nodes,
            "local_edges": self.local_edges,
            "cross_edges": self.cross_edges,
            "notifications_sent": self.notifications_sent,
            "notifications_delivered": self.notifications_delivered,
            "pushes": self.pushes,
            "push_bytes": self.push_bytes,
            "steals": self.steals,
            "tasks_per_node": dict(sorted(self.tasks_per_node.items())),
        }


class NotificationRouter:
    """Sends cross-shard dependence notifications as simulated messages.

    Messages ride :meth:`TransferEngine.send_message` between the two
    nodes' host spaces; each shows up in the trace as a ``"notify"``
    record whose ``meta`` is ``(successor seq,)`` — the contract
    SAN-T009 checks.  ``pending(uid)`` counts undelivered
    notifications per successor; the sharded scheduler buffers a ready
    task until its count reaches zero.
    """

    def __init__(
        self, rt: "OmpSsRuntime", stats: ClusterStats, *, message_bytes: int = NOTIFY_BYTES
    ) -> None:
        self.rt = rt
        self.stats = stats
        self.message_bytes = message_bytes
        self._pending: dict[int, int] = {}
        #: called with the successor uid when its last notification lands
        self.on_clear: Callable[[int], None] = lambda uid: None

    def pending(self, uid: int) -> int:
        return self._pending.get(uid, 0)

    def send(self, src_host: str, dst_host: str, succ_uid: int, label: str) -> float:
        """Notify ``dst_host`` that a predecessor of ``succ_uid`` finished."""
        self._pending[succ_uid] = self._pending.get(succ_uid, 0) + 1
        self.stats.notifications_sent += 1
        local = self.rt._local_ids
        succ_seq = local.get(succ_uid, succ_uid)
        return self.rt.transfer_engine.send_message(
            src_host,
            dst_host,
            self.message_bytes,
            label=label,
            meta=(succ_seq,),
            on_deliver=lambda: self._delivered(succ_uid),
        )

    def _delivered(self, succ_uid: int) -> None:
        self.stats.notifications_delivered += 1
        left = self._pending.get(succ_uid, 0) - 1
        if left > 0:
            self._pending[succ_uid] = left
            return
        self._pending.pop(succ_uid, None)
        self.on_clear(succ_uid)
