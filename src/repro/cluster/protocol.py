"""Inter-node protocol layer: reliable notifications for cross-shard edges.

When a dependence edge crosses shards, the predecessor's node sends one
simulated notification message to the successor's node over the same
network links the data uses (they share the NIC), and pushes the edge's
region toward the successor's host memory *overlapped* with scheduling.
The successor is released to its node-local scheduler only when

* every predecessor has finished (the usual dependence rule, enforced
  by the runtime's dependence graph), **and**
* every cross-shard notification for it has been *delivered*.

Data transfers are not awaited here — a worker's start already waits on
in-flight input copies, so the node dispatches ready tasks while remote
outputs are still on the wire (the Bosch et al. overlap).

Reliable delivery
-----------------
The network underneath may be unreliable (see
:class:`~repro.resilience.faults.MessageFaultRule`): messages are
dropped, duplicated, delayed, and whole nodes crash mid-flight.  The
router therefore implements a classic reliable-delivery protocol:

* every transmission carries a **sequence number**, allocated from one
  counter per sender node — seqs are unique per sender, so the
  receiver's per-(src, dst) window is equivalently keyed by sender,
  which lets the window survive successor evacuation;
* the receiver **acks** each transmission (acks ride the same NIC and
  suffer the same faults); re-receipt of a seen seq is suppressed as a
  duplicate but re-acked, so a lost ack does not wedge the sender;
* an unacked transmission is **retransmitted** after a timeout with
  exponential backoff, re-resolving the successor's *current* shard
  (it may have been evacuated since) — a bounded budget, then
  :class:`NotificationRetryExceededError`;
* every node has an **epoch**, bumped when it crashes: deliveries and
  acks whose sender epoch is stale are discarded, fencing a dead
  node's in-flight traffic off its rejoined incarnation;
* when a sender node crashes, its unacked in-flight notifications are
  recovered by the survivors after a detection delay — the dependence
  information is derivable from the replicated task graph, so the
  successor's node self-clears the edge (``"notify-recover"`` trace
  record), dedup-checked against deliveries that did land.

``on_clear`` fires **exactly once** per successor: the pending count
never goes negative (a stray delivery is recorded as a diagnostic, a
late duplicate after clearing is counted and ignored).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Optional

from repro.sim.engine import Event, EventKind

if TYPE_CHECKING:  # pragma: no cover
    from repro.runtime.runtime import OmpSsRuntime

#: Simulated size of one notification message (bytes on the wire).
NOTIFY_BYTES = 256

#: Simulated size of one acknowledgement message.
ACK_BYTES = 64


class NotificationRetryExceededError(RuntimeError):
    """A notification kept going unacked past the retransmit budget."""


@dataclass(frozen=True)
class ProtocolConfig:
    """Tunables of the reliable notification protocol."""

    #: Acks + timeout retransmission on.  Off = fire-and-forget (the
    #: pre-reliable protocol): any dropped notification wedges its
    #: successor forever — the ablation the chaos bench compares against.
    reliable: bool = True
    #: Base retransmit timeout, measured from the transmission's wire
    #: arrival (so NIC queueing behind large data pushes does not cause
    #: spurious storms); retry ``n`` waits ``ack_timeout * backoff**n``.
    ack_timeout: float = 0.05
    backoff: float = 2.0
    #: Retransmissions allowed per notification before the run aborts.
    max_retransmits: int = 10
    ack_bytes: int = ACK_BYTES
    #: Receiver dedup window per sender (seqs below ``max - window`` are
    #: treated as duplicates once trimmed).
    window: int = 65536
    #: How long survivors take to detect a crashed sender and self-clear
    #: its in-flight notifications from the replicated task graph.
    detection_delay: float = 0.05

    def __post_init__(self) -> None:
        if self.ack_timeout <= 0:
            raise ValueError("ack_timeout must be positive")
        if self.backoff < 1.0:
            raise ValueError("backoff must be >= 1")
        if self.max_retransmits < 0:
            raise ValueError("max_retransmits must be >= 0")
        if self.ack_bytes < 0:
            raise ValueError("ack_bytes must be >= 0")
        if self.window < 1:
            raise ValueError("window must be >= 1")
        if self.detection_delay < 0:
            raise ValueError("detection_delay must be >= 0")


@dataclass
class ClusterStats:
    """Counters behind the per-node utilization / strong-scaling report."""

    n_nodes: int = 0
    local_edges: int = 0
    cross_edges: int = 0
    notifications_sent: int = 0
    notifications_delivered: int = 0
    pushes: int = 0
    push_bytes: int = 0
    steals: int = 0
    tasks_per_node: dict[int, int] = field(default_factory=dict)
    # -- reliable-delivery protocol ------------------------------------
    retransmits: int = 0           # unacked transmissions re-sent
    acks_sent: int = 0
    dup_suppressed: int = 0        # re-received seqs ignored (re-acked)
    stale_discarded: int = 0       # stale-epoch traffic fenced off
    stray_deliveries: int = 0      # deliveries for a never-pending successor
    late_duplicates: int = 0       # deliveries after the successor cleared
    notifications_recovered: int = 0  # self-cleared after a sender crash
    local_deliveries: int = 0      # retransmit resolved to the sender's node
    # -- node-crash evacuation -----------------------------------------
    evacuations: int = 0           # dead shards re-homed
    evacuated_tasks: int = 0       # unfinished tasks moved off dead nodes

    def as_dict(self) -> dict:
        return {
            "n_nodes": self.n_nodes,
            "local_edges": self.local_edges,
            "cross_edges": self.cross_edges,
            "notifications_sent": self.notifications_sent,
            "notifications_delivered": self.notifications_delivered,
            "pushes": self.pushes,
            "push_bytes": self.push_bytes,
            "steals": self.steals,
            "tasks_per_node": dict(sorted(self.tasks_per_node.items())),
            "retransmits": self.retransmits,
            "acks_sent": self.acks_sent,
            "dup_suppressed": self.dup_suppressed,
            "stale_discarded": self.stale_discarded,
            "stray_deliveries": self.stray_deliveries,
            "late_duplicates": self.late_duplicates,
            "notifications_recovered": self.notifications_recovered,
            "local_deliveries": self.local_deliveries,
            "evacuations": self.evacuations,
            "evacuated_tasks": self.evacuated_tasks,
        }


@dataclass
class _Message:
    """Sender-side state of one logical notification."""

    succ_uid: int
    succ_seq: int            # run-local successor id (trace meta[0])
    src_node: int
    dst_node: int            # current believed location of the successor
    seq: int                 # unique per sender node
    epoch: int               # sender epoch at send time
    label: str
    attempts: int = 0        # transmissions so far
    acked: bool = False
    abandoned: bool = False  # sender crashed; recovery owns it now
    timer: Optional[Event] = None


class NotificationRouter:
    """Sends cross-shard dependence notifications as simulated messages.

    Messages ride :meth:`TransferEngine.send_message` between the two
    nodes' host spaces; each transmission shows up in the trace as a
    ``"notify"`` record whose ``meta`` is ``(successor seq, wire seq)``
    — the contract SAN-T009/SAN-T010 check.  ``pending(uid)`` counts
    undelivered notifications per successor; the sharded scheduler
    buffers a ready task until its count reaches zero, at which point
    ``on_clear`` fires exactly once.
    """

    def __init__(
        self,
        rt: "OmpSsRuntime",
        stats: ClusterStats,
        *,
        message_bytes: int = NOTIFY_BYTES,
        config: Optional[ProtocolConfig] = None,
    ) -> None:
        self.rt = rt
        self.stats = stats
        self.message_bytes = message_bytes
        self.config = config if config is not None else ProtocolConfig()
        self._pending: dict[int, int] = {}
        self._cleared: set[int] = set()
        #: called with the successor uid when its last notification lands
        self.on_clear: Callable[[int], None] = lambda uid: None
        #: current shard node of a successor uid (set by the scheduler;
        #: retransmissions re-resolve the destination through this)
        self.resolve_node: Callable[[int], int] = lambda uid: 0
        #: node id -> host memory space (set by the scheduler)
        self.host_of_node: dict[int, str] = {}
        self._msg_ids = itertools.count(1)
        self._next_seq: dict[int, int] = {}
        self._inflight: dict[int, _Message] = {}
        # receiver dedup state, keyed by sender node (seqs are unique
        # per sender, so this is the per-(src, dst) window collapsed
        # over dst — it survives successor evacuation)
        self._received: dict[int, set[int]] = {}
        self._recv_floor: dict[int, int] = {}
        self._epoch: dict[int, int] = {}
        #: satellite-1 guard: stray deliveries are recorded, not applied
        self.diagnostics: list[str] = []

    # ------------------------------------------------------------------
    def pending(self, uid: int) -> int:
        return self._pending.get(uid, 0)

    def epoch(self, node: int) -> int:
        return self._epoch.get(node, 0)

    def send(self, src_node: int, dst_node: int, succ_uid: int, label: str) -> None:
        """Notify ``dst_node`` that a predecessor of ``succ_uid`` finished."""
        self._pending[succ_uid] = self._pending.get(succ_uid, 0) + 1
        # the count may legitimately reach zero between two sends (the
        # first predecessor's message lands before the second finishes);
        # a fresh notification re-opens the successor — true wire
        # duplicates never get this far (suppressed by seq dedup)
        self._cleared.discard(succ_uid)
        self.stats.notifications_sent += 1
        seq = self._next_seq.get(src_node, 0) + 1
        self._next_seq[src_node] = seq
        msg = _Message(
            succ_uid=succ_uid,
            succ_seq=self.rt._local_ids.get(succ_uid, succ_uid),
            src_node=src_node,
            dst_node=dst_node,
            seq=seq,
            epoch=self.epoch(src_node),
            label=label,
        )
        if self.config.reliable:
            self._inflight[next(self._msg_ids)] = msg
        self._transmit(msg)

    # ------------------------------------------------------------------
    # Sender side
    # ------------------------------------------------------------------
    def _transmit(self, msg: _Message) -> None:
        msg.attempts += 1
        msg.dst_node = self.resolve_node(msg.succ_uid)
        if msg.dst_node == msg.src_node:
            # the successor was evacuated onto the sender's own node
            # since the original send: deliver locally, no wire traffic
            now = self.rt.engine.now
            self.stats.local_deliveries += 1
            self.rt.trace.add(
                now, now,
                worker=f"node:{self.host_of_node[msg.src_node]}",
                category="notify-local",
                label=msg.label,
                meta=(msg.succ_seq, msg.seq),
            )
            self._on_wire_delivered(msg, msg.dst_node)
            if self.config.reliable:
                self._settle(msg)
            return
        src_host = self.host_of_node[msg.src_node]
        dst_host = self.host_of_node[msg.dst_node]
        end = self.rt.transfer_engine.send_message(
            src_host,
            dst_host,
            self.message_bytes,
            label=msg.label,
            meta=(msg.succ_seq, msg.seq),
            category="notify",
            on_deliver=lambda dst=msg.dst_node: self._on_wire_delivered(msg, dst),
        )
        if self.config.reliable:
            delay = self.config.ack_timeout * (
                self.config.backoff ** (msg.attempts - 1)
            )
            msg.timer = self.rt.engine.schedule(
                end + delay,
                lambda: self._on_timeout(msg),
                kind=EventKind.RETRANSMIT,
                label=f"retransmit? {msg.label} seq={msg.seq}",
            )

    def _on_timeout(self, msg: _Message) -> None:
        if msg.acked or msg.abandoned:
            return
        msg.timer = None
        if self.epoch(msg.src_node) != msg.epoch:
            return  # sender crashed since; recovery owns this edge now
        if msg.attempts > self.config.max_retransmits:
            raise NotificationRetryExceededError(
                f"notification for successor #{msg.succ_seq} ({msg.label!r}, "
                f"node {msg.src_node} seq {msg.seq}) went unacked through "
                f"{msg.attempts} transmissions "
                f"(retransmit budget {self.config.max_retransmits})"
            )
        self.stats.retransmits += 1
        self._transmit(msg)

    def _on_ack(self, msg: _Message) -> None:
        if msg.acked or msg.abandoned:
            return
        if self.epoch(msg.src_node) != msg.epoch:
            self.stats.stale_discarded += 1
            return  # ack addressed to a dead incarnation of the sender
        self._settle(msg)

    def _settle(self, msg: _Message) -> None:
        msg.acked = True
        if msg.timer is not None:
            msg.timer.cancel()
            msg.timer = None
        for mid, m in self._inflight.items():
            if m is msg:
                del self._inflight[mid]
                break

    # ------------------------------------------------------------------
    # Receiver side
    # ------------------------------------------------------------------
    def _on_wire_delivered(self, msg: _Message, dst_node: int) -> None:
        if self.epoch(msg.src_node) != msg.epoch:
            self.stats.stale_discarded += 1
            return  # epoch fencing: a crashed sender's stale traffic
        if self._is_duplicate(msg.src_node, msg.seq):
            self.stats.dup_suppressed += 1
        else:
            self._deliver_logical(msg)
        # (re-)ack even for duplicates: the original ack may be the
        # reason this retransmission exists
        if self.config.reliable and dst_node != msg.src_node:
            self._send_ack(msg, dst_node)

    def _is_duplicate(self, src_node: int, seq: int) -> bool:
        floor = self._recv_floor.get(src_node, 0)
        if seq <= floor:
            return True
        seen = self._received.setdefault(src_node, set())
        if seq in seen:
            return True
        seen.add(seq)
        if len(seen) > self.config.window:
            new_floor = max(seen) - self.config.window
            self._recv_floor[src_node] = new_floor
            self._received[src_node] = {s for s in seen if s > new_floor}
        return False

    def _send_ack(self, msg: _Message, dst_node: int) -> None:
        self.stats.acks_sent += 1
        self.rt.transfer_engine.send_message(
            self.host_of_node[dst_node],
            self.host_of_node[msg.src_node],
            self.config.ack_bytes,
            label=f"ack:{msg.label}",
            meta=(msg.succ_seq, msg.seq),
            category="ack",
            on_deliver=lambda: self._on_ack(msg),
        )

    def _deliver_logical(self, msg: _Message) -> None:
        uid = msg.succ_uid
        if uid in self._cleared:
            # e.g. the successor's node crashed after release and the
            # unacked notification was retransmitted to its new home
            self.stats.late_duplicates += 1
            return
        left = self._pending.get(uid, 0) - 1
        if left < 0:
            # the guard: a stray delivery must never drive the count
            # negative or fire on_clear a second time
            self.stats.stray_deliveries += 1
            self.diagnostics.append(
                f"stray notification delivery for successor #{msg.succ_seq} "
                f"({msg.label!r}, node {msg.src_node} seq {msg.seq}): "
                "no notification is pending"
            )
            return
        self.stats.notifications_delivered += 1
        if left > 0:
            self._pending[uid] = left
            return
        self._pending.pop(uid, None)
        self._cleared.add(uid)
        self.on_clear(uid)

    # ------------------------------------------------------------------
    # Node crash handling
    # ------------------------------------------------------------------
    def node_down(self, node: int) -> None:
        """Fence a crashed node and recover its in-flight notifications.

        The node's epoch is bumped (stale traffic from its dead
        incarnation is discarded on arrival) and every unacked
        notification it sent is *abandoned*: after ``detection_delay``
        the surviving successors self-clear the edge — the dependence
        information is replicated in the task graph, only the message
        was lost.  Self-clearing is dedup-checked, so an edge whose
        message actually landed before the crash is not double-counted.
        """
        self._epoch[node] = self.epoch(node) + 1
        if not self.config.reliable:
            return
        now = self.rt.engine.now
        for msg in list(self._inflight.values()):
            if msg.src_node != node or msg.acked or msg.abandoned:
                continue
            msg.abandoned = True
            if msg.timer is not None:
                msg.timer.cancel()
                msg.timer = None
            self.rt.engine.schedule(
                now + self.config.detection_delay,
                lambda m=msg: self._recover(m),
                kind=EventKind.NOTIFY,
                label=f"recover {msg.label} seq={msg.seq}",
            )

    def _recover(self, msg: _Message) -> None:
        if self._is_duplicate(msg.src_node, msg.seq):
            return  # the original transmission landed before the crash
        now = self.rt.engine.now
        self.stats.notifications_recovered += 1
        dst = self.resolve_node(msg.succ_uid)
        self.rt.trace.add(
            now, now,
            worker=f"node:{self.host_of_node.get(dst, dst)}",
            category="notify-recover",
            label=msg.label,
            meta=(msg.succ_seq, msg.seq),
        )
        self._deliver_logical(msg)
