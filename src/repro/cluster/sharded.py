"""Sharded cluster scheduling: one scheduler instance per node.

The :class:`ShardedClusterScheduler` partitions the dependence graph
across the nodes of a ``cluster_machine`` (see
:mod:`repro.cluster.partition`), runs one *inner* scheduler per node —
any registered policy; per-node versioning instances learn their own
profile tables — and turns cross-shard dependence edges into the
notification protocol of :mod:`repro.cluster.protocol`:

* at submit, each task is assigned a shard (its in-edges are already
  recorded, so the partitioner sees the full dependence context);
* when a predecessor finishes, every cross-shard successor's node gets
  one notification message, and the edge's data (RAW edges) is pushed
  toward the successor's host memory, overlapped with scheduling;
* a task that becomes ready is handed to its node's inner scheduler
  only once all its notifications are delivered — the data itself may
  still be in flight (worker start waits on input copies, so local
  dispatch overlaps remote transfers);
* idle nodes steal ready tasks from the shard with the deepest ready
  pool; a stolen task is re-costed by the thief's own scheduler (its
  profile tables, its busy estimates).

Outside a cluster machine (one node) the whole layer degenerates to a
thin pass-through around a single inner scheduler.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Optional

from repro.cluster.partition import PartitionPolicy, make_partitioner
from repro.cluster.protocol import (
    NOTIFY_BYTES,
    ClusterStats,
    NotificationRouter,
    ProtocolConfig,
)
from repro.runtime.dependences import DepKind
from repro.runtime.task import TaskInstance, TaskVersion
from repro.schedulers.base import Scheduler

if TYPE_CHECKING:  # pragma: no cover
    from repro.runtime.runtime import OmpSsRuntime
    from repro.runtime.worker import Worker


class NodeRuntimeView:
    """The runtime as seen by one node's inner scheduler.

    Everything delegates to the real runtime except ``workers``, which
    is restricted to the node's own devices — an inner scheduler can
    only place work on its shard's node.
    """

    def __init__(self, rt: "OmpSsRuntime", workers: "list[Worker]") -> None:
        self._rt = rt
        self.workers = workers

    def __getattr__(self, name: str) -> Any:
        return getattr(self._rt, name)


class ShardedClusterScheduler(Scheduler):
    name = "cluster"
    supports_versions = True

    def __init__(
        self,
        *,
        inner: str = "versioning",
        inner_options: Optional[dict] = None,
        partition: str = "affinity",
        partition_options: Optional[dict] = None,
        steal: bool = True,
        steal_threshold: int = 2,
        message_bytes: int = NOTIFY_BYTES,
        protocol: "Optional[ProtocolConfig | dict]" = None,
    ) -> None:
        super().__init__()
        if steal_threshold < 1:
            raise ValueError("steal_threshold must be at least 1")
        if protocol is None:
            protocol = ProtocolConfig()
        elif isinstance(protocol, dict):
            protocol = ProtocolConfig(**protocol)
        self.protocol = protocol
        self.inner_name = inner
        self.inner_options = dict(inner_options or {})
        if inner in ("versioning", "ver", "versioning-locality", "ver-loc"):
            # late binding by default: bounded reliable-phase queues keep
            # per-node pools non-empty under backlog, so steals can happen
            self.inner_options.setdefault("reliable_queue_bound", 4)
        self.partition_name = partition
        self.partition_options = dict(partition_options or {})
        self.steal = steal
        self.steal_threshold = steal_threshold
        self.message_bytes = message_bytes

        self.stats = ClusterStats()
        self.inner: list[Scheduler] = []
        self.node_workers: dict[int, "list[Worker]"] = {}
        self.node_of_worker: dict[str, int] = {}
        self.shard_of: dict[int, int] = {}
        self.partitioner: Optional[PartitionPolicy] = None
        self.router: Optional[NotificationRouter] = None
        self._buffered: dict[int, TaskInstance] = {}
        self._released: set[int] = set()
        self._stealing = False
        self._dead_nodes: set[int] = set()
        self.layout = None
        # capability caching: node -> kind bitmask of its live workers,
        # and task definition -> capable-node tuple.  Both are pure
        # functions of worker liveness, so they are rebuilt lazily after
        # every liveness change (worker_down/up, node_down/up) —
        # capability scans were a top frame of the 16-node profile.
        self._alive_kinds: dict[int, int] = {}
        self._capable_cache: dict[object, list[int]] = {}
        # per-node bound pool_size methods (see _refresh_pool_fns)
        self._pool_fns: list = []
        # sorted node ids, rebuilt alongside the pool fns: the steal
        # scan re-sorted the node map on every lifecycle hook
        self._sorted_nodes: list[int] = []

    # ------------------------------------------------------------------
    def bind(self, runtime: "OmpSsRuntime") -> None:
        from repro.schedulers.registry import create_scheduler  # avoid cycle

        super().bind(runtime)
        layout = runtime.machine.cluster_layout()
        self.layout = layout
        self.n_nodes = layout.n_nodes
        self.stats.n_nodes = self.n_nodes
        if self.n_nodes > 1:
            runtime.enable_node_topology(layout)
        self.node_workers = {n: [] for n in layout.nodes()}
        for w in runtime.workers:
            node = layout.node_of_device.get(w.device.name, 0)
            self.node_workers[node].append(w)
            self.node_of_worker[w.name] = node
        self.inner = []
        for node in layout.nodes():
            sched = create_scheduler(self.inner_name, **self.inner_options)
            sched.bind(NodeRuntimeView(runtime, self.node_workers[node]))
            self.inner.append(sched)
        self._refresh_pool_fns()
        self.partitioner = make_partitioner(
            self.partition_name, self.n_nodes, **self.partition_options
        )
        self.router = NotificationRouter(
            runtime, self.stats, message_bytes=self.message_bytes,
            config=self.protocol,
        )
        self.router.on_clear = self._notifications_cleared
        self.router.host_of_node = dict(layout.host_of_node)
        self.router.resolve_node = lambda uid: self.shard_of.get(uid, 0)
        self.stats.tasks_per_node = {n: 0 for n in layout.nodes()}

    # ------------------------------------------------------------------
    # Shard assignment
    # ------------------------------------------------------------------
    def _liveness_changed(self) -> None:
        """Invalidate capability caches (a worker died/revived or a node
        crashed/rejoined)."""
        self._alive_kinds.clear()
        self._capable_cache.clear()

    def _node_alive_kinds(self, node: int) -> int:
        """Kind bitmask of the node's live workers (cached per liveness)."""
        kinds = self._alive_kinds.get(node)
        if kinds is None:
            kinds = 0
            for w in self.node_workers[node]:
                if w.alive:
                    kinds |= w.device.kind.mask
            self._alive_kinds[node] = kinds
        return kinds

    def _capable_nodes(self, t: TaskInstance) -> list[int]:
        """Nodes with a live worker able to run some version of ``t``.

        A node qualifies iff the union of the definition's version
        device kinds intersects the node's live-worker kinds — the same
        predicate as scanning versions × workers, computed as one
        integer AND of kind bitmasks and memoized per task definition
        until the next liveness change.
        """
        cached = self._capable_cache.get(t.definition)
        if cached is not None:
            return list(cached)
        union = t.definition.device_kind_mask
        out = []
        for node in sorted(self.node_workers):
            if node in self._dead_nodes:
                # crash in progress: the hook runs before the node's
                # workers are torn down, so check this explicitly
                continue
            if union & self._node_alive_kinds(node):
                out.append(node)
        if not out:
            raise RuntimeError(
                f"no node of this cluster can run any version of task {t.name!r}"
            )
        self._capable_cache[t.definition] = out
        return list(out)

    def task_submitted(self, t: TaskInstance) -> None:
        assert self.rt is not None and self.partitioner is not None
        if self.n_nodes == 1:
            self.shard_of[t.uid] = 0
            self.stats.tasks_per_node[0] = self.stats.tasks_per_node.get(0, 0) + 1
            return
        seq = self.rt._local_ids.get(t.uid, t.uid)
        allowed = self._capable_nodes(t)
        loads = [0] * self.n_nodes
        for n, c in self.stats.tasks_per_node.items():
            loads[n] = c
        node = self.partitioner.assign(t, seq, allowed, loads)
        if node not in allowed:  # pragma: no cover - defensive
            node = allowed[0]
        self.shard_of[t.uid] = node
        self.stats.tasks_per_node[node] = self.stats.tasks_per_node.get(node, 0) + 1
        self.partitioner.note_assigned(t, node)
        # classify this task's in-edges; predecessors that already
        # finished will never pass through task_finished again, so their
        # cross-shard notifications are sent right now
        for edge in self.rt.graph.in_edges(t.uid):
            pred_node = self.shard_of.get(edge.src)
            if pred_node is None or pred_node == node:
                self.stats.local_edges += 1
                continue
            self.stats.cross_edges += 1
            if edge.src not in self.rt.graph._unfinished:
                self._notify_edge(edge, pred_node, node)

    # ------------------------------------------------------------------
    # Notification protocol
    # ------------------------------------------------------------------
    def _notify_edge(self, edge, pred_node: int, succ_node: int) -> None:
        assert self.rt is not None and self.router is not None and self.layout
        dst_host = self.layout.host_of_node[succ_node]
        succ = self.rt.graph.task(edge.dst)
        # run-local label: task labels embed the process-global uid,
        # which would make otherwise-identical runs produce different
        # traces (the seeded-determinism contract)
        self.router.send(pred_node, succ_node, edge.dst, succ.name)
        if edge.kind is DepKind.RAW:
            # push the produced region toward the consuming shard's host
            # overlapped with scheduling (the consumer's worker-space
            # fetch chains off this staging copy if it is still in flight)
            _, issued = self.rt.push_region(edge.region, dst_host)
            if issued:
                self.stats.pushes += 1
                self.stats.push_bytes += edge.region.nbytes

    def _notifications_cleared(self, uid: int) -> None:
        t = self._buffered.pop(uid, None)
        if t is not None:
            self._release(t, self._live_node_for(t, self.shard_of[t.uid]))

    # ------------------------------------------------------------------
    # Runtime hooks
    # ------------------------------------------------------------------
    def task_ready(self, t: TaskInstance) -> None:
        node = self.shard_of.get(t.uid)
        if node is None:  # pragma: no cover - defensive
            node = 0
            self.shard_of[t.uid] = node
        if self.router is not None and self.router.pending(t.uid) > 0:
            self._buffered[t.uid] = t
            return
        self._release(t, self._live_node_for(t, node))

    def _live_node_for(self, t: TaskInstance, node: int) -> int:
        """The shard's node — unless it lost every worker since the
        assignment, in which case the task is re-homed to the least
        loaded capable node.  Covers the window where a dying worker's
        requeued tasks arrive at ``task_ready`` before the runtime
        invokes the ``worker_down`` hook that evacuates the node, and
        buffered tasks whose node died while their notifications were
        still in flight."""
        if self.n_nodes == 1 or any(w.alive for w in self.node_workers[node]):
            return node
        allowed = self._capable_nodes(t)
        loads = [0] * self.n_nodes
        for n, c in self.stats.tasks_per_node.items():
            loads[n] = c
        dst = min(allowed, key=lambda n: (loads[n], n))
        self._move_shard(t, node, dst)
        self.stats.evacuated_tasks += 1
        return dst

    def _release(self, t: TaskInstance, node: int) -> None:
        assert self.rt is not None
        first = t.uid not in self._released
        self._released.add(t.uid)
        if self.n_nodes > 1:
            if first:
                # the SAN-T010 anchor: every release must be justified
                # by a delivered notification per pending cross edge,
                # and must happen at most once per task
                now = self.rt.engine.now
                self.rt.trace.add(
                    now, now,
                    worker=f"node:{node}",
                    category="release",
                    label=t.name,
                    meta=(self.rt._local_ids.get(t.uid, t.uid),),
                )
            self._stage_reads(t, node)
        self.inner[node].task_ready(t)
        self._maybe_steal()

    def _stage_reads(self, t: TaskInstance, node: int) -> None:
        """Pull read regions with no same-node copy toward the node host.

        RAW pushes already cover producer-consumer data; this covers
        read-only inputs (no dependence edge, so nothing pushed them).
        """
        assert self.rt is not None and self.layout is not None
        host = self.layout.host_of_node[node]
        rt = self.rt
        directory = rt.directory
        node_of_space = self.layout.node_of_space
        stats = self.stats
        seen: set = set()
        for acc in t.accesses:
            region = acc.region
            rid = region.rid
            if not acc.reads or rid in seen:
                continue
            seen.add(rid)
            local = False
            for s in directory.valid_view(region):
                if node_of_space.get(s) == node:
                    local = True
                    break
            if local:
                continue
            _, issued = rt.push_region(region, host)
            if issued:
                stats.pushes += 1
                stats.push_bytes += region.nbytes

    def _finished_uid(self, t: TaskInstance) -> int:
        # a winning speculative shadow finishes on behalf of its primary
        return t.speculative_of if t.speculative_of is not None else t.uid

    def _node_of(self, worker: "Worker") -> int:
        return self.node_of_worker.get(worker.name, 0)

    def task_started(self, t: TaskInstance, worker: "Worker") -> None:
        self.inner[self._node_of(worker)].task_started(t, worker)
        self._maybe_steal()

    def task_finished(self, t: TaskInstance, worker: "Worker", measured: float) -> None:
        assert self.rt is not None
        node = self._node_of(worker)
        if self.n_nodes > 1:
            uid = self._finished_uid(t)
            pred_node = self.shard_of.get(uid, node)
            for edge in self.rt.graph.out_edges(uid):
                succ_node = self.shard_of.get(edge.dst)
                if succ_node is not None and succ_node != pred_node:
                    self._notify_edge(edge, pred_node, succ_node)
        self.inner[node].task_finished(t, worker, measured)
        self._maybe_steal()

    def task_speculated(
        self, t: TaskInstance, worker: "Worker", version: TaskVersion
    ) -> None:
        self.inner[self._node_of(worker)].task_speculated(t, worker, version)

    def task_requeued(self, t: TaskInstance, worker: "Worker") -> None:
        self.inner[self._node_of(worker)].task_requeued(t, worker)

    def worker_down(self, worker: "Worker") -> None:
        self._liveness_changed()
        node = self._node_of(worker)
        self.inner[node].worker_down(worker)
        if (
            self.n_nodes > 1
            and node not in self._dead_nodes  # node_down already evacuated
            and not any(w.alive for w in self.node_workers[node])
        ):
            self._evacuate(node)

    def worker_up(self, worker: "Worker") -> None:
        self._liveness_changed()
        self.inner[self._node_of(worker)].worker_up(worker)
        self._maybe_steal()

    # ------------------------------------------------------------------
    # Node crash / rejoin
    # ------------------------------------------------------------------
    def node_down(self, node: int) -> None:
        """A whole node crashed (called by the runtime's ``_node_down``).

        Runs *before* the node's individual workers are torn down:
        the router fences the dead node's epoch and recovers its
        in-flight notifications, the partitioner forgets affinity to
        it, the node's ready pool is evacuated, and every unfinished
        task still sharded there is repartitioned to the survivors —
        so by the time the dead workers' running/queued tasks are
        requeued, ``task_ready`` routes them to live nodes.
        """
        if node in self._dead_nodes or self.n_nodes == 1:
            return
        self._dead_nodes.add(node)
        self._liveness_changed()
        if self.router is not None:
            self.router.node_down(node)
        if self.partitioner is not None:
            self.partitioner.note_node_down(node)
        self._evacuate(node)
        self._reassign_shards(node)

    def node_up(self, node: int) -> None:
        """A crashed node rejoined: fresh inner scheduler, cold state.

        The node is eligible for new shard assignments and work
        stealing again, but its pre-crash profile tables are gone —
        the rejoined runtime learns from scratch, exactly like a
        rebooted machine.
        """
        from repro.schedulers.registry import create_scheduler  # avoid cycle

        if node not in self._dead_nodes:
            return
        self._dead_nodes.discard(node)
        self._liveness_changed()
        assert self.rt is not None
        sched = create_scheduler(self.inner_name, **self.inner_options)
        sched.bind(NodeRuntimeView(self.rt, self.node_workers[node]))
        self.inner[node] = sched
        self._refresh_pool_fns()
        self._maybe_steal()

    def _reassign_shards(self, dead: int) -> None:
        """Repartition every unfinished task sharded on a dead node."""
        assert self.rt is not None
        g = self.rt.graph
        for uid, node in list(self.shard_of.items()):
            if node != dead or uid not in g._unfinished:
                continue
            t = g.task(uid)
            allowed = self._capable_nodes(t)
            loads = [0] * self.n_nodes
            for n, c in self.stats.tasks_per_node.items():
                loads[n] = c
            dst = min(allowed, key=lambda n: (loads[n], n))
            self._move_shard(t, dead, dst)
            self.stats.evacuated_tasks += 1

    def _evacuate(self, dead_node: int) -> None:
        """Re-home the ready pool of a node that lost all its workers."""
        assert self.partitioner is not None
        self.stats.evacuations += 1
        while True:
            t = self.inner[dead_node].steal_ready_task(lambda task: True)
            if t is None:
                break
            allowed = self._capable_nodes(t)
            loads = [0] * self.n_nodes
            for n, c in self.stats.tasks_per_node.items():
                loads[n] = c
            node = min(allowed, key=lambda n: (loads[n], n))
            self._move_shard(t, dead_node, node)
            self.stats.evacuated_tasks += 1
            self._release(t, node)

    # ------------------------------------------------------------------
    # Work stealing
    # ------------------------------------------------------------------
    def _pool_depth(self, node: int) -> int:
        fn = self._pool_fns[node] if node < len(self._pool_fns) else None
        return fn() if fn is not None else 0

    def _refresh_pool_fns(self) -> None:
        """Re-resolve each inner scheduler's ``pool_size`` method.

        Bound methods are cached because the steal scan calls
        ``_pool_depth`` for every node on every task lifecycle hook;
        per-call ``getattr`` on the inner scheduler was a top frame.
        When the inner scheduler's ``pool_size`` is the stock
        ``len(self._pool)`` implementation, the pool deque's own
        ``__len__`` is bound instead — a C-level call; the deque is
        created once in ``__init__`` and only ever mutated in place, so
        the binding stays valid.  Must be called whenever ``self.inner``
        changes (bind, node_up).
        """
        from repro.core.versioning import VersioningScheduler  # avoid cycle

        stock = VersioningScheduler.pool_size
        fns = []
        for sched in self.inner:
            fn = getattr(sched, "pool_size", None)
            if not callable(fn):
                fns.append(None)
            elif getattr(type(sched), "pool_size", None) is stock:
                fns.append(sched._pool.__len__)
            else:
                fns.append(fn)
        self._pool_fns = fns
        self._sorted_nodes = sorted(self.node_workers)

    def _has_idle_worker(self, node: int) -> bool:
        assert self.rt is not None
        now = self.rt.engine.now
        return any(
            w.alive and w.available(now) and w.current is None and not w.queue
            for w in self.node_workers[node]
        )

    def _accepts(self, node: int):
        # same predicate as scanning versions × live workers: some
        # version's device kinds intersect the node's live-worker kinds
        kinds = self._node_alive_kinds(node)

        def accept(t: TaskInstance) -> bool:
            return bool(kinds & t.definition.device_kind_mask)

        return accept

    def _move_shard(self, t: TaskInstance, src: int, dst: int) -> None:
        assert self.partitioner is not None
        self.shard_of[t.uid] = dst
        self.stats.tasks_per_node[src] = self.stats.tasks_per_node.get(src, 1) - 1
        self.stats.tasks_per_node[dst] = self.stats.tasks_per_node.get(dst, 0) + 1
        self.partitioner.note_assigned(t, dst)

    def _migrate_successors(self, t: TaskInstance, src: int, dst: int) -> None:
        """Re-home the stolen task's unreleased successor closure.

        Shards are fixed at submit, so without this a stolen chain task
        leaves its successors behind: every later task of the chain
        ping-pongs between thief and victim, each hop pushing the
        written region across the network twice.  Migrating the
        not-yet-released transitive successors that still sit on the
        victim moves the *rest of the chain* with the steal, so the
        data crosses the wire once.
        """
        assert self.rt is not None
        frontier = [t.uid]
        seen = {t.uid}
        while frontier:
            uid = frontier.pop()
            for edge in self.rt.graph.out_edges(uid):
                succ = edge.dst
                if succ in seen:
                    continue
                seen.add(succ)
                if self.shard_of.get(succ) != src or succ in self._released:
                    continue
                succ_t = self.rt.graph.task(succ)
                if not self._accepts(dst)(succ_t):
                    continue
                self._move_shard(succ_t, src, dst)
                frontier.append(succ)

    def _maybe_steal(self) -> None:
        """Move ready work from the deepest pool to a starving node.

        A node steals when it has an idle worker and an empty ready
        pool; the victim is the shard with the deepest pool (at least
        ``steal_threshold`` tasks).  The stolen task re-enters through
        the thief's inner scheduler, which re-costs it with its own
        profile tables.  Reentrancy-guarded: releasing the stolen task
        can trigger dispatches that call back into this scheduler.
        """
        if not self.steal or self.n_nodes < 2 or self._stealing:
            return
        assert self.rt is not None
        self._stealing = True
        try:
            threshold = self.steal_threshold
            nodes = self._sorted_nodes
            while True:
                # one depth snapshot per round (pool sizes only change
                # when a steal succeeds, which restarts the round); the
                # victim check runs first so the common no-backlog case
                # exits after one flat scan, before any idle-worker scan
                depths = [
                    fn() if fn is not None else 0 for fn in self._pool_fns
                ]
                if max(depths) < threshold:
                    return
                victims = sorted(
                    (n for n in nodes if depths[n] >= threshold),
                    key=lambda n: (-depths[n], n),
                )
                thieves = [
                    n
                    for n in nodes
                    if depths[n] == 0 and self._has_idle_worker(n)
                ]
                if not thieves:
                    return
                stolen = None
                for thief in thieves:
                    for victim in victims:
                        if victim == thief:
                            continue
                        t = self.inner[victim].steal_ready_task(self._accepts(thief))
                        if t is None:
                            continue
                        stolen = (t, victim, thief)
                        break
                    if stolen is not None:
                        break
                if stolen is None:
                    return
                t, victim, thief = stolen
                self._move_shard(t, victim, thief)
                self._migrate_successors(t, victim, thief)
                self.stats.steals += 1
                now = self.rt.engine.now
                self.rt.trace.add(
                    now,
                    now,
                    worker=f"node:{thief}",
                    category="steal",
                    label=t.name,
                    meta=(self.rt._local_ids.get(t.uid, t.uid), victim, thief),
                )
                self._stage_reads(t, thief)
                self.inner[thief].task_ready(t)
        finally:
            self._stealing = False

    # ------------------------------------------------------------------
    # Introspection (metrics / tests)
    # ------------------------------------------------------------------
    def shard_map(self) -> dict[int, int]:
        """Task uid -> node, after any steals."""
        return dict(self.shard_of)

    def node_utilisation(self, makespan: float) -> dict[int, float]:
        """Mean worker utilisation per node."""
        out: dict[int, float] = {}
        for node, ws in sorted(self.node_workers.items()):
            if not ws or makespan <= 0:
                out[node] = 0.0
                continue
            out[node] = sum(w.busy_time for w in ws) / (makespan * len(ws))
        return out
