"""repro — Self-Adaptive OmpSs Tasks in Heterogeneous Environments.

A from-scratch Python reproduction of Planas, Badia, Ayguadé & Labarta,
*Self-Adaptive OmpSs Tasks in Heterogeneous Environments* (IPDPS 2013):
an OmpSs-like task runtime whose **versioning scheduler** learns, at run
time, which of several task implementations (SMP / GPU / ...) to run for
each data-set size, executing on a deterministic discrete-event
simulation of a heterogeneous node (SMP cores + GPUs + PCIe links).

See ``examples/quickstart.py`` for a minimal runnable program, and
``repro.apps`` for the paper's three evaluation applications (tiled
matrix multiplication, Cholesky factorization, PBPI).
"""

from repro.runtime import (
    AccessKind,
    DataRegion,
    OmpSsRuntime,
    RunResult,
    RuntimeConfig,
    TaskDefinition,
    TaskInstance,
    TaskVersion,
    clear_task_registry,
    registered_tasks,
    target,
    task,
)
from repro.core import (
    LocalityVersioningScheduler,
    VersioningScheduler,
    VersionProfileTable,
    load_hints,
    save_hints,
)
from repro.cluster import (
    PARTITION_POLICIES,
    ShardedClusterScheduler,
    make_partitioner,
)
from repro.schedulers import (
    AffinityScheduler,
    DependencyAwareScheduler,
    available_schedulers,
    create_scheduler,
)
from repro.sim import Machine, MachineSpec, cluster_machine, minotauro_node
from repro.resilience import (
    FaultPlan,
    HangRule,
    LinkDegradation,
    MessageFaultRule,
    NodeCrashRule,
    ProgressStallError,
    RecoveryPolicy,
    ResilienceStats,
    TaskFaultRule,
    TaskRetryExceededError,
    TransferFaultRule,
    TransferRetryExceededError,
    WorkerFailure,
    WorkerSlowdown,
    recovery_defaults,
)

__version__ = "1.0.0"

__all__ = [
    "AccessKind",
    "DataRegion",
    "OmpSsRuntime",
    "RunResult",
    "RuntimeConfig",
    "TaskDefinition",
    "TaskInstance",
    "TaskVersion",
    "task",
    "target",
    "clear_task_registry",
    "registered_tasks",
    "VersioningScheduler",
    "LocalityVersioningScheduler",
    "VersionProfileTable",
    "load_hints",
    "save_hints",
    "AffinityScheduler",
    "DependencyAwareScheduler",
    "ShardedClusterScheduler",
    "PARTITION_POLICIES",
    "make_partitioner",
    "available_schedulers",
    "create_scheduler",
    "Machine",
    "MachineSpec",
    "cluster_machine",
    "minotauro_node",
    "FaultPlan",
    "HangRule",
    "LinkDegradation",
    "MessageFaultRule",
    "NodeCrashRule",
    "TaskFaultRule",
    "TransferFaultRule",
    "WorkerFailure",
    "WorkerSlowdown",
    "ProgressStallError",
    "RecoveryPolicy",
    "ResilienceStats",
    "TaskRetryExceededError",
    "TransferRetryExceededError",
    "recovery_defaults",
    "__version__",
]
