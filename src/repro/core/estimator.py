"""Execution-time estimators.

"Each time a task is run, its execution time is recorded and its mean
execution time is updated as the arithmetic mean of all the task
executions.  This value is used by the scheduler as the estimated
execution time of that task version for future executions." (§IV-B)

Footnote 3 adds: "Optionally, we could try computing a weighted mean to
give more weight to recent execution information and less weight to past
information, but we have not tried this option yet."  Both are
implemented; the ablation bench compares them on a drifting workload.
"""

from __future__ import annotations

from typing import Any, Optional, Protocol, runtime_checkable


@runtime_checkable
class Estimator(Protocol):
    """Incremental duration estimator."""

    count: int

    def add(self, sample: float) -> None:
        """Record one observed duration (seconds, non-negative)."""
        ...

    @property
    def value(self) -> Optional[float]:
        """Current estimate, or ``None`` before any sample."""
        ...

    def clone(self) -> "Estimator":
        """Fresh estimator of the same kind (same parameters, no data)."""
        ...


class RunningMean:
    """Numerically stable arithmetic running mean (Welford update)."""

    __slots__ = ("count", "_mean")

    def __init__(self) -> None:
        self.count = 0
        self._mean = 0.0

    def add(self, sample: float) -> None:
        if sample < 0:
            raise ValueError(f"negative duration sample: {sample}")
        self.count += 1
        self._mean += (sample - self._mean) / self.count

    @property
    def value(self) -> Optional[float]:
        return self._mean if self.count else None

    def preload(self, mean: float, count: int) -> None:
        """Seed the estimator from an external hint (mean over ``count`` runs)."""
        if count <= 0:
            raise ValueError("hint count must be positive")
        if mean < 0:
            raise ValueError("hint mean must be non-negative")
        self.count = count
        self._mean = mean

    def clone(self) -> "RunningMean":
        return RunningMean()

    def __repr__(self) -> str:
        v = "-" if self.value is None else f"{self.value:.6f}s"
        return f"RunningMean({v}, n={self.count})"


class EWMA:
    """Exponentially weighted moving average — the footnote-3 option.

    ``alpha`` is the weight of the newest sample; the first sample
    initialises the value directly.
    """

    __slots__ = ("alpha", "count", "_value")

    def __init__(self, alpha: float = 0.25) -> None:
        if not 0.0 < alpha <= 1.0:
            raise ValueError("alpha must be in (0, 1]")
        self.alpha = alpha
        self.count = 0
        self._value = 0.0

    def add(self, sample: float) -> None:
        if sample < 0:
            raise ValueError(f"negative duration sample: {sample}")
        if self.count == 0:
            self._value = sample
        else:
            self._value = self.alpha * sample + (1.0 - self.alpha) * self._value
        self.count += 1

    @property
    def value(self) -> Optional[float]:
        return self._value if self.count else None

    def preload(self, mean: float, count: int) -> None:
        if count <= 0:
            raise ValueError("hint count must be positive")
        if mean < 0:
            raise ValueError("hint mean must be non-negative")
        self.count = count
        self._value = mean

    def clone(self) -> "EWMA":
        return EWMA(self.alpha)

    def __repr__(self) -> str:
        v = "-" if self.value is None else f"{self.value:.6f}s"
        return f"EWMA(alpha={self.alpha}, {v}, n={self.count})"


def make_estimator(kind: str = "mean", **options: Any) -> Estimator:
    """Factory: ``"mean"`` -> :class:`RunningMean`, ``"ewma"`` -> :class:`EWMA`."""
    kind = kind.lower()
    if kind in ("mean", "arithmetic", "running-mean"):
        if options:
            raise ValueError(f"RunningMean takes no options, got {options}")
        return RunningMean()
    if kind in ("ewma", "weighted"):
        return EWMA(**options)
    raise ValueError(f"unknown estimator kind {kind!r} (use 'mean' or 'ewma')")
