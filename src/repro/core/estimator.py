"""Execution-time estimators.

"Each time a task is run, its execution time is recorded and its mean
execution time is updated as the arithmetic mean of all the task
executions.  This value is used by the scheduler as the estimated
execution time of that task version for future executions." (§IV-B)

Footnote 3 adds: "Optionally, we could try computing a weighted mean to
give more weight to recent execution information and less weight to past
information, but we have not tried this option yet."  Both are
implemented; the ablation bench compares them on a drifting workload.

Both estimators also track the *spread* of their samples — Welford M2
for the arithmetic mean, an exponentially weighted variance for the
EWMA.  Per-version timing variance is first-class signal: the straggler
watchdog arms its adaptive deadlines at ``mean + k·sigma``, so a
learned profile states not just how long a version takes but how long
it may plausibly take before the execution is declared a straggler.
"""

from __future__ import annotations

from typing import Any, Optional, Protocol, runtime_checkable


@runtime_checkable
class Estimator(Protocol):
    """Incremental duration estimator."""

    count: int

    def add(self, sample: float) -> None:
        """Record one observed duration (seconds, non-negative)."""
        ...

    @property
    def value(self) -> Optional[float]:
        """Current estimate, or ``None`` before any sample."""
        ...

    @property
    def variance(self) -> Optional[float]:
        """Sample-spread estimate, or ``None`` below two samples."""
        ...

    def clone(self) -> "Estimator":
        """Fresh estimator of the same kind (same parameters, no data)."""
        ...


class RunningMean:
    """Numerically stable arithmetic running mean + variance (Welford)."""

    __slots__ = ("count", "_mean", "_m2")

    def __init__(self) -> None:
        self.count = 0
        self._mean = 0.0
        self._m2 = 0.0

    def add(self, sample: float) -> None:
        if sample < 0:
            raise ValueError(f"negative duration sample: {sample}")
        self.count += 1
        delta = sample - self._mean
        self._mean += delta / self.count
        self._m2 += delta * (sample - self._mean)

    @property
    def value(self) -> Optional[float]:
        return self._mean if self.count else None

    @property
    def variance(self) -> Optional[float]:
        """Unbiased sample variance, or ``None`` below two samples."""
        if self.count < 2:
            return None
        return max(0.0, self._m2 / (self.count - 1))

    def preload(self, mean: float, count: int,
                variance: Optional[float] = None) -> None:
        """Seed the estimator from an external hint (mean over ``count``
        runs, optionally with the sample variance of those runs)."""
        if count <= 0:
            raise ValueError("hint count must be positive")
        if mean < 0:
            raise ValueError("hint mean must be non-negative")
        if variance is not None and variance < 0:
            raise ValueError("hint variance must be non-negative")
        self.count = count
        self._mean = mean
        self._m2 = variance * (count - 1) if variance is not None and count > 1 else 0.0

    def clone(self) -> "RunningMean":
        return RunningMean()

    def __repr__(self) -> str:
        v = "-" if self.value is None else f"{self.value:.6f}s"
        return f"RunningMean({v}, n={self.count})"


class EWMA:
    """Exponentially weighted moving average — the footnote-3 option.

    ``alpha`` is the weight of the newest sample; the first sample
    initialises the value directly.  The spread is tracked as the
    matching exponentially weighted variance
    (``var' = (1-α)·(var + α·diff²)``), so recent jitter dominates the
    deadline width just as recent samples dominate the mean.
    """

    __slots__ = ("alpha", "count", "_value", "_var")

    def __init__(self, alpha: float = 0.25) -> None:
        if not 0.0 < alpha <= 1.0:
            raise ValueError("alpha must be in (0, 1]")
        self.alpha = alpha
        self.count = 0
        self._value = 0.0
        self._var = 0.0

    def add(self, sample: float) -> None:
        if sample < 0:
            raise ValueError(f"negative duration sample: {sample}")
        if self.count == 0:
            self._value = sample
        else:
            diff = sample - self._value
            incr = self.alpha * diff
            self._value += incr
            self._var = (1.0 - self.alpha) * (self._var + diff * incr)
        self.count += 1

    @property
    def value(self) -> Optional[float]:
        return self._value if self.count else None

    @property
    def variance(self) -> Optional[float]:
        """Exponentially weighted variance, ``None`` below two samples."""
        if self.count < 2:
            return None
        return max(0.0, self._var)

    def preload(self, mean: float, count: int,
                variance: Optional[float] = None) -> None:
        if count <= 0:
            raise ValueError("hint count must be positive")
        if mean < 0:
            raise ValueError("hint mean must be non-negative")
        if variance is not None and variance < 0:
            raise ValueError("hint variance must be non-negative")
        self.count = count
        self._value = mean
        self._var = variance if variance is not None and count > 1 else 0.0

    def clone(self) -> "EWMA":
        return EWMA(self.alpha)

    def __repr__(self) -> str:
        v = "-" if self.value is None else f"{self.value:.6f}s"
        return f"EWMA(alpha={self.alpha}, {v}, n={self.count})"


def make_estimator(kind: str = "mean", **options: Any) -> Estimator:
    """Factory: ``"mean"`` -> :class:`RunningMean`, ``"ewma"`` -> :class:`EWMA`."""
    kind = kind.lower()
    if kind in ("mean", "arithmetic", "running-mean"):
        if options:
            raise ValueError(f"RunningMean takes no options, got {options}")
        return RunningMean()
    if kind in ("ewma", "weighted"):
        return EWMA(**options)
    raise ValueError(f"unknown estimator kind {kind!r} (use 'mean' or 'ewma')")
