"""Locality-aware versioning scheduler (future work, §VII).

"Firstly, the amount of data transfers is not optimal because data
locality is not taken into account.  We are going to provide the
versioning scheduler with data locality information in order to further
improve the performance of applications."

This variant implements that extension: in the reliable-information
phase, the earliest-executor estimate for a (version, worker) pair is
augmented with the *estimated transfer time* of the input bytes missing
from the worker's memory space, priced at the machine's link rates.
Workers that already hold the data therefore win ties — and can win
outright when the transfer cost exceeds the compute-time difference.

The learning phase is unchanged (there is no timing information to
weigh against locality yet).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.versioning import VersioningScheduler
from repro.runtime.task import TaskInstance, TaskVersion

if TYPE_CHECKING:  # pragma: no cover
    from repro.runtime.worker import Worker


class LocalityVersioningScheduler(VersioningScheduler):
    name = "versioning-locality"

    def _placement_penalty(
        self, t: TaskInstance, version: TaskVersion, worker: "Worker"
    ) -> float:
        assert self.rt is not None
        space = worker.space
        penalty = 0.0
        seen: set = set()
        for acc in t.accesses:
            if not acc.reads or acc.region.key in seen:
                continue
            seen.add(acc.region.key)
            region = acc.region
            directory = self.rt.directory
            if directory.is_valid(region, space):
                continue
            src = directory.choose_source(region, space)
            try:
                penalty += self.rt.machine.path_transfer_time(src, space, region.nbytes)
            except KeyError:
                # unreachable pair: the dispatch itself would fail later;
                # make the pair maximally unattractive instead
                penalty += float("inf")
        return penalty
