"""The paper's contribution: the versioning scheduler and its data model.

* :mod:`repro.core.estimator` — execution-time estimators (arithmetic
  running mean, as in the paper, plus the weighted-mean option its
  footnote 3 sketches),
* :mod:`repro.core.grouping` — data-set-size grouping strategies (exact
  match, as implemented in the paper, plus the range-based grouping its
  future-work section proposes),
* :mod:`repro.core.profile` — the ``TaskVersionSet`` bookkeeping of
  Table I,
* :mod:`repro.core.versioning` — the scheduling policy itself,
* :mod:`repro.core.locality` — the locality-aware variant sketched in
  §VII,
* :mod:`repro.core.hints` — external hint files (XML/JSON) for
  warm-starting the learning phase, also from §VII.
"""

from repro.core.estimator import EWMA, Estimator, RunningMean, make_estimator
from repro.core.grouping import (
    ExactSizeGrouping,
    FixedBinGrouping,
    RelativeSizeGrouping,
    SizeGrouping,
    make_grouping,
)
from repro.core.profile import SizeGroupProfile, TaskVersionSet, VersionProfile, VersionProfileTable
from repro.core.versioning import VersioningScheduler
from repro.core.locality import LocalityVersioningScheduler
from repro.core.hints import load_hints, save_hints

__all__ = [
    "Estimator",
    "RunningMean",
    "EWMA",
    "make_estimator",
    "SizeGrouping",
    "ExactSizeGrouping",
    "RelativeSizeGrouping",
    "FixedBinGrouping",
    "make_grouping",
    "VersionProfile",
    "SizeGroupProfile",
    "TaskVersionSet",
    "VersionProfileTable",
    "VersioningScheduler",
    "LocalityVersioningScheduler",
    "load_hints",
    "save_hints",
]
