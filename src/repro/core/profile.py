"""The ``TaskVersionSet`` data model (Table I of the paper).

The versioning scheduler "keeps and updates several data structures
during the whole application execution that collect information related
to each set of task implementations.  The information is divided into
TaskVersionSet's ... each set is divided into different groups,
according to the amount of data needed by each task instance.  For each
group of data set size, the information is kept per task implementation:
the number of executions #Exec and their mean execution time ExecTime."

The hierarchy here matches the table column-for-column::

    VersionProfileTable
      └── TaskVersionSet        (one per task, e.g. "task1")
            └── SizeGroupProfile  (one per data-set size group, e.g. "2 MB")
                  └── VersionProfile  (one per implementation: ExecTime, #Exec)
"""

from __future__ import annotations

from typing import Hashable, Iterable, Optional

from repro.core.estimator import Estimator, RunningMean, make_estimator
from repro.core.grouping import ExactSizeGrouping, SizeGrouping


class VersionProfile:
    """ExecTime / #Exec for one implementation at one data-set size."""

    __slots__ = ("version_name", "estimator", "assigned", "preloaded")

    def __init__(self, version_name: str, estimator: Optional[Estimator] = None) -> None:
        self.version_name = version_name
        self.estimator: Estimator = estimator if estimator is not None else RunningMean()
        #: dispatches not yet retired — used to round-robin fairly during
        #: the learning phase when many tasks are assigned before any
        #: timing feedback arrives.
        self.assigned = 0
        #: executions imported from an external hints file / profile
        #: store rather than observed in this run.  Warm-start policies
        #: (trust vs probation) decide how much λ-credit these carry.
        self.preloaded = 0

    @property
    def executions(self) -> int:
        return self.estimator.count

    @property
    def live_executions(self) -> int:
        """Executions actually observed in this run (excludes preloads)."""
        return max(0, self.estimator.count - self.preloaded)

    @property
    def mean_time(self) -> Optional[float]:
        return self.estimator.value

    @property
    def variance(self) -> Optional[float]:
        """Spread of the observed durations (``None`` below two samples)."""
        return getattr(self.estimator, "variance", None)

    @property
    def stddev(self) -> Optional[float]:
        var = self.variance
        return None if var is None else var ** 0.5

    def record(self, duration: float) -> None:
        self.estimator.add(duration)
        if self.assigned > 0:
            self.assigned -= 1

    def preload(self, mean: float, count: int,
                variance: Optional[float] = None) -> None:
        """Seed from external history: ``count`` runs averaging ``mean``
        (optionally with the variance of those runs, so warm-started
        straggler deadlines inherit ``mean + k·sigma`` immediately)."""
        preload = getattr(self.estimator, "preload", None)
        if preload is None:
            raise TypeError(
                f"estimator {type(self.estimator).__name__} cannot be preloaded"
            )
        if variance is None:
            preload(float(mean), int(count))
        else:
            preload(float(mean), int(count), float(variance))
        self.preloaded = int(count)

    def __repr__(self) -> str:
        t = "-" if self.mean_time is None else f"{self.mean_time * 1e3:.2f}ms"
        return f"<{self.version_name}: {t}, #Exec={self.executions}>"


class SizeGroupProfile:
    """All version profiles for one (task, data-set-size-group) pair."""

    def __init__(
        self,
        size_key: Hashable,
        representative_bytes: int,
        estimator_proto: Optional[Estimator] = None,
    ) -> None:
        self.size_key = size_key
        self.representative_bytes = representative_bytes
        self._proto = estimator_proto
        self._versions: dict[str, VersionProfile] = {}

    # ------------------------------------------------------------------
    def profile(self, version_name: str) -> VersionProfile:
        """Get or create the profile for one implementation."""
        p = self._versions.get(version_name)
        if p is None:
            est = self._proto.clone() if self._proto is not None else None
            p = VersionProfile(version_name, est)
            self._versions[version_name] = p
        return p

    def versions(self) -> list[VersionProfile]:
        return list(self._versions.values())

    def executions(self, version_name: str) -> int:
        return self.profile(version_name).executions

    def mean_time(self, version_name: str) -> Optional[float]:
        return self.profile(version_name).mean_time

    def record(self, version_name: str, duration: float) -> None:
        self.profile(version_name).record(duration)

    def note_assigned(self, version_name: str) -> None:
        self.profile(version_name).assigned += 1

    def note_unassigned(self, version_name: str) -> None:
        """Release a pending assignment that will never be recorded
        (the dispatch was revoked by fault recovery)."""
        p = self.profile(version_name)
        if p.assigned > 0:
            p.assigned -= 1

    # ------------------------------------------------------------------
    def in_learning_phase(self, version_names: Iterable[str], lam: int) -> bool:
        """True while any candidate version has fewer than λ executions.

        "Once all tasks versions belonging to the same group of data set
        sizes have been run at least λ times, we consider that the
        scheduler has enough reliable information." (§IV-B)
        """
        return any(self.executions(v) < lam for v in version_names)

    def least_assigned(self, version_names: list[str]) -> str:
        """Learning-phase pick: fewest (executions + pending dispatches);
        ties fall back to declaration order, giving round-robin."""
        if not version_names:
            raise ValueError("no candidate versions")
        return min(
            version_names,
            key=lambda v: (
                self.executions(v) + self.profile(v).assigned,
                version_names.index(v),
            ),
        )

    def fastest_version(self, version_names: Iterable[str]) -> str:
        """The fastest-executor version for this size group (§IV-B)."""
        best: Optional[tuple[float, str]] = None
        for v in version_names:
            m = self.mean_time(v)
            if m is None:
                continue
            if best is None or (m, v) < best:
                best = (m, v)
        if best is None:
            raise ValueError("fastest_version called before any execution was recorded")
        return best[1]

    def total_executions(self) -> int:
        return sum(p.executions for p in self._versions.values())


class TaskVersionSet:
    """Profiles for all data-set-size groups of one task."""

    def __init__(
        self,
        task_name: str,
        grouping: Optional[SizeGrouping] = None,
        estimator_proto: Optional[Estimator] = None,
    ) -> None:
        self.task_name = task_name
        self.grouping = grouping if grouping is not None else ExactSizeGrouping()
        self._proto = estimator_proto
        self._groups: dict[Hashable, SizeGroupProfile] = {}

    def group_for(self, nbytes: int) -> SizeGroupProfile:
        key = self.grouping.key(nbytes)
        g = self._groups.get(key)
        if g is None:
            g = SizeGroupProfile(key, nbytes, self._proto)
            self._groups[key] = g
        return g

    def groups(self) -> list[SizeGroupProfile]:
        return [self._groups[k] for k in sorted(self._groups, key=repr)]

    def __len__(self) -> int:
        return len(self._groups)


class VersionProfileTable:
    """The full Table I: every TaskVersionSet the scheduler has seen."""

    def __init__(
        self,
        grouping: Optional[SizeGrouping] = None,
        estimator_kind: str = "mean",
        estimator_options: Optional[dict] = None,
    ) -> None:
        self.grouping = grouping if grouping is not None else ExactSizeGrouping()
        self.estimator_kind = estimator_kind
        self.estimator_options = dict(estimator_options or {})
        self._sets: dict[str, TaskVersionSet] = {}
        # fail fast on a bad estimator spec rather than at first dispatch
        self._make_proto()

    def _make_proto(self) -> Estimator:
        return make_estimator(self.estimator_kind, **self.estimator_options)

    def version_set(self, task_name: str) -> TaskVersionSet:
        s = self._sets.get(task_name)
        if s is None:
            s = TaskVersionSet(task_name, self.grouping, self._make_proto())
            self._sets[task_name] = s
        return s

    def group(self, task_name: str, nbytes: int) -> SizeGroupProfile:
        return self.version_set(task_name).group_for(nbytes)

    def sets(self) -> list[TaskVersionSet]:
        return [self._sets[k] for k in sorted(self._sets)]

    def __contains__(self, task_name: str) -> bool:
        return task_name in self._sets

    # ------------------------------------------------------------------
    def render(self) -> str:
        """Render the table in the layout of the paper's Table I."""
        name_w = max([len("TaskVersionSet")] + [len(s.task_name) for s in self.sets()])
        header = (
            f"{'TaskVersionSet':<{name_w}} {'DataSetSize':<14} "
            f"{'<VersionId, ExecTime, #Exec>'}"
        )
        lines = [header, "-" * len(header)]
        for vset in self.sets():
            first_task = True
            for grp in vset.groups():
                first_size = True
                for prof in grp.versions():
                    task_col = vset.task_name if first_task else ""
                    size_col = vset.grouping.label(grp.size_key) if first_size else ""
                    t = "-" if prof.mean_time is None else f"{prof.mean_time * 1e3:.1f}ms"
                    lines.append(
                        f"{task_col:<{name_w}} {size_col:<14} "
                        f"<{prof.version_name}, {t}, {prof.executions}>"
                    )
                    first_task = False
                    first_size = False
        return "\n".join(lines)

    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """Serialisable snapshot (used by the hints file, §VII)."""
        out: dict = {
            "grouping": self.grouping.name,
            "estimator": self.estimator_kind,
            "tasks": {},
        }
        for vset in self.sets():
            groups = []
            for grp in vset.groups():
                groups.append(
                    {
                        "representative_bytes": grp.representative_bytes,
                        "versions": {
                            p.version_name: (
                                {
                                    "mean_time": p.mean_time,
                                    "executions": p.executions,
                                }
                                if p.variance is None
                                else {
                                    "mean_time": p.mean_time,
                                    "executions": p.executions,
                                    "variance": p.variance,
                                }
                            )
                            for p in grp.versions()
                            if p.executions > 0
                        },
                    }
                )
            out["tasks"][vset.task_name] = groups
        return out

    def preload(self, snapshot: dict) -> int:
        """Warm-start from a snapshot produced by :meth:`to_dict`.

        Group membership is recomputed with *this* table's grouping, so
        hints recorded under exact grouping remain usable under range
        grouping and vice versa.  Returns the number of (group, version)
        entries preloaded; each entry is marked as preloaded so
        warm-start policies can distinguish imported from observed
        executions.
        """
        loaded = 0
        for task_name, groups in snapshot.get("tasks", {}).items():
            for g in groups:
                grp = self.group(task_name, int(g["representative_bytes"]))
                for vname, stats in g.get("versions", {}).items():
                    mean = stats.get("mean_time")
                    count = int(stats.get("executions", 0))
                    if mean is None or count <= 0:
                        continue
                    variance = stats.get("variance")
                    grp.profile(vname).preload(
                        float(mean), count,
                        None if variance is None else float(variance),
                    )
                    loaded += 1
        return loaded
