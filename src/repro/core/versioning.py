"""The versioning scheduler — the paper's contribution (§IV-B).

Policy summary:

* **Learning phase** (per task, per data-set-size group): "picking task
  versions from ready tasks in a Round-Robin fashion and distributing
  them among OmpSs workers.  ...  We force the scheduler to run each
  task version at least λ times."  Each version is dispatched until λ
  runs are underway; the group then graduates as soon as all versions
  have λ *recorded* executions.

* **Reliable-information phase**: each ready task goes to its
  **earliest executor** — over all (version, worker) pairs, minimise
  *worker estimated busy time* + *version mean execution time*.  The
  fastest executor usually wins, but a busy fastest executor loses to an
  idle slower one, exactly the Figure 5 scenario.

* The scheduler never stops learning: every completed task updates its
  version's running mean, and an unseen data-set size sends that group
  back to the learning phase.

Dispatch discipline
-------------------
Ready tasks enter the scheduler's pool and are *pumped* into per-worker
queues only while a worker has queue room (``queue_depth``, default 2 =
one running + one prefetching).  This bounded look-ahead mirrors how the
Nanos++ workers pick work and is what produces two emergent behaviours
the paper reports: "the SMP worker threads keep picking the SMP version
while the GPUs are busy", and "for the final part of the computation ...
only the GPUs run the fastest implementation to avoid losing
performance" — once the pool drains, the earliest executor of the few
remaining tasks is always a GPU.

Tunables (all exposed to the ablation benches): λ (``lam``), the
estimator kind (arithmetic mean / EWMA), the size-grouping strategy
(exact / relative range / fixed bins), ``queue_depth`` and an optional
warm-start profile table loaded from a hints file.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Deque, Optional

from repro.core.grouping import SizeGrouping, make_grouping
from repro.core.profile import SizeGroupProfile, VersionProfileTable
from repro.runtime.task import TaskInstance, TaskVersion
from repro.schedulers.base import Scheduler

if TYPE_CHECKING:  # pragma: no cover
    from repro.runtime.worker import Worker

#: Default λ: "we force the scheduler to run each task version at least
#: λ times during the initial learning phase" — configurable by the user
#: (footnote 4); three runs is the value our benches default to.
DEFAULT_LAMBDA = 3

#: Default per-worker queue bound (running + prefetching).
DEFAULT_QUEUE_DEPTH = 2


class VersioningScheduler(Scheduler):
    name = "versioning"
    supports_versions = True

    def __init__(
        self,
        *,
        lam: int = DEFAULT_LAMBDA,
        queue_depth: int = DEFAULT_QUEUE_DEPTH,
        estimator: str = "mean",
        estimator_options: Optional[dict] = None,
        grouping: "str | SizeGrouping" = "exact",
        grouping_options: Optional[dict] = None,
        hints: Optional[dict] = None,
    ) -> None:
        super().__init__()
        if lam < 1:
            raise ValueError("lam (λ) must be at least 1")
        if queue_depth < 1:
            raise ValueError("queue_depth must be at least 1")
        self.lam = lam
        self.queue_depth = queue_depth
        if isinstance(grouping, str):
            grouping = make_grouping(grouping, **(grouping_options or {}))
        elif grouping_options:
            raise ValueError("grouping_options only apply when grouping is a name")
        self.table = VersionProfileTable(
            grouping=grouping,
            estimator_kind=estimator,
            estimator_options=estimator_options,
        )
        if hints:
            self.table.preload(hints)
        # ready tasks not yet placed in any worker queue (FIFO)
        self._pool: Deque[TaskInstance] = deque()
        self._pumping = False
        # worker name -> estimated busy time (sum of estimates of queued
        # + running tasks, §IV-B "OmpSs worker estimated busy time")
        self._busy_est: dict[str, float] = {}
        # task uid -> the estimate added at dispatch (to subtract at finish)
        self._est_by_uid: dict[int, float] = {}
        # diagnostics for tests/benches
        self.learning_dispatches = 0
        self.reliable_dispatches = 0
        # per-(task name, size-group key) dispatch counters, consumed by
        # the trace sanitizer's λ-consistency check (SAN-T005)
        self.group_dispatches: dict[tuple, dict[str, int]] = {}

    # ------------------------------------------------------------------
    def bind(self, runtime) -> None:  # type: ignore[override]
        super().bind(runtime)
        self._busy_est = {w.name: 0.0 for w in runtime.workers}

    # ------------------------------------------------------------------
    # Introspection helpers (used by tests and the Figure 5 bench)
    # ------------------------------------------------------------------
    def estimated_busy_time(self, worker: "Worker") -> float:
        """§IV-B: sum of estimated execution times of the worker's queue."""
        return self._busy_est[worker.name]

    def pool_size(self) -> int:
        return len(self._pool)

    def _has_room(self, worker: "Worker") -> bool:
        return worker.load() < self.queue_depth

    def _runnable_versions(self, t: TaskInstance) -> list[TaskVersion]:
        """Versions of ``t`` that at least one present worker can run."""
        out = [v for v in t.definition.versions if self.capable_workers(v)]
        if not out:
            raise RuntimeError(
                f"no worker on this machine can run any version of task {t.name!r}"
            )
        return out

    # ------------------------------------------------------------------
    # Runtime hooks
    # ------------------------------------------------------------------
    def task_ready(self, t: TaskInstance) -> None:
        self._pool.append(t)
        self._pump()

    def task_started(self, t: TaskInstance, worker: "Worker") -> None:
        self._pump()

    def task_finished(self, t: TaskInstance, worker: "Worker", measured: float) -> None:
        est = self._est_by_uid.pop(t.uid, 0.0)
        self._busy_est[worker.name] = max(0.0, self._busy_est[worker.name] - est)
        assert t.chosen_version is not None
        group = self.table.group(t.name, t.data_bytes)
        group.record(t.chosen_version.name, measured)
        self._pump()

    # ------------------------------------------------------------------
    # Resilience hooks
    # ------------------------------------------------------------------
    def task_requeued(self, t: TaskInstance, worker: "Worker") -> None:
        """Undo the dispatch bookkeeping of a task pulled back by fault
        recovery: its busy-time estimate leaves the worker's account and
        its pending learning assignment is released — no duration is
        recorded, so the profile tables stay valid."""
        est = self._est_by_uid.pop(t.uid, None)
        if est is not None:
            self._busy_est[worker.name] = max(0.0, self._busy_est[worker.name] - est)
        if t.chosen_version is not None:
            group = self.table.group(t.name, t.data_bytes)
            group.note_unassigned(t.chosen_version.name)

    def worker_down(self, worker: "Worker") -> None:
        # per-task estimates were already released via task_requeued when
        # the runtime drained the queue; zero the account to kill any
        # floating-point residue (the worker never hosts work again)
        self._busy_est[worker.name] = 0.0

    def worker_up(self, worker: "Worker") -> None:
        self._pump()

    # ------------------------------------------------------------------
    # Dispatch pump
    # ------------------------------------------------------------------
    def _pump(self) -> None:
        """Place pool tasks into worker queues while there is room.

        Reentrancy guard: dispatching starts tasks, which calls back
        into ``task_started`` -> ``_pump``.
        """
        if self._pumping:
            return
        assert self.rt is not None
        self._pumping = True
        try:
            while self._pool:
                placed = False
                # groups found unplaceable in this scan: skip their other
                # tasks (same candidates, same full workers)
                blocked: set = set()
                # scan by the priority clause first (stable FIFO within
                # equal priorities); zero-priority pools keep plain order
                if any(t.priority for t in self._pool):
                    scan = sorted(
                        enumerate(self._pool), key=lambda it: (-it[1].priority, it[0])
                    )
                else:
                    scan = list(enumerate(self._pool))
                for i, t in scan:
                    gkey = (t.name, self.table.grouping.key(t.data_bytes))
                    if gkey in blocked:
                        continue
                    placement = self._choose(t)
                    if placement is None:
                        blocked.add(gkey)
                        continue
                    version, worker, learning = placement
                    del self._pool[i]
                    group = self.table.group(t.name, t.data_bytes)
                    est = group.mean_time(version.name)
                    est_value = est if est is not None else 0.0
                    self._busy_est[worker.name] += est_value
                    self._est_by_uid[t.uid] = est_value
                    group.note_assigned(version.name)
                    counters = self.group_dispatches.setdefault(
                        gkey, {"learning": 0, "reliable": 0}
                    )
                    if learning:
                        self.learning_dispatches += 1
                        counters["learning"] += 1
                    else:
                        self.reliable_dispatches += 1
                        counters["reliable"] += 1
                    self.rt.dispatch(t, worker, version)
                    placed = True
                    break
                if not placed:
                    break
        finally:
            self._pumping = False

    def _choose(
        self, t: TaskInstance
    ) -> Optional[tuple[TaskVersion, "Worker", bool]]:
        """Pick (version, worker, is_learning) for ``t``, or None if no
        capable worker currently has queue room."""
        versions = self._runnable_versions(t)
        group = self.table.group(t.name, t.data_bytes)
        names = [v.name for v in versions]
        # version-fallback retry: a (version, worker) pair the task has
        # already faulted on is avoided while an alternative exists —
        # the paper's multi-version tables double as the degradation path
        avoid = frozenset(t.failed_pairs)

        if group.in_learning_phase(names, self.lam):
            # λ-capped round-robin into workers with queue room.
            choice = self._learning_choice(t, versions, group)
            if choice is not None:
                return (*choice, True)
            # Every version already has λ runs underway but none recorded
            # yet: keep feeding workers that have room so nobody idles
            # while the slow λ-runs retire (estimates are still unknown,
            # so room-gating is the only sane throttle here).
            choice = self._earliest_executor(
                t, versions, group, allow_unknown=True, require_room=True, avoid=avoid
            )
            if choice is None and avoid:
                choice = self._earliest_executor(
                    t, versions, group, allow_unknown=True, require_room=True
                )
            if choice is not None:
                return (*choice, True)
            return None
        # Reliable phase: the paper pushes at ready time into unbounded
        # per-worker queues (Figure 5 shows deep task lists); the busy
        # estimate, not queue room, is what steers placement.
        choice = self._earliest_executor(
            t, versions, group, allow_unknown=False, require_room=False, avoid=avoid
        )
        if choice is None and avoid:
            # every viable pair already faulted for this task: fall back
            # to the plain earliest executor rather than deadlocking
            choice = self._earliest_executor(
                t, versions, group, allow_unknown=False, require_room=False
            )
        if choice is None:
            return None
        return (*choice, False)

    def _learning_choice(
        self, t: TaskInstance, versions: list[TaskVersion], group: SizeGroupProfile
    ) -> Optional[tuple[TaskVersion, "Worker"]]:
        """Round-robin λ executions per version, least-booked worker first.

        A version stops receiving learning dispatches once λ runs are
        *underway* (recorded + pending), so a burst of ready tasks does
        not flood a slow version's worker before any feedback arrives.
        """
        order = [v.name for v in versions]
        pending_needed = [
            v
            for v in versions
            if group.executions(v.name) + group.profile(v.name).assigned < self.lam
        ]
        if not pending_needed:
            return None
        # The λ runs are mandatory: queue them even on a busy worker —
        # waiting for queue room would starve a version whose device is
        # saturated (exactly the GPU potrf case in Cholesky).
        # A version whose every dispatchable worker already faulted this
        # task (or that has no dispatchable worker at all) yields to the
        # alternatives — retries prefer a fresh (version, worker) pair.
        def exhausted(v: TaskVersion) -> bool:
            return all(
                (v.name, w.name) in t.failed_pairs
                for w in self.capable_workers(v)
                if self.dispatchable(w)
            )

        chosen = min(
            pending_needed,
            key=lambda v: (
                exhausted(v),
                group.executions(v.name) + group.profile(v.name).assigned,
                order.index(v.name),
            ),
        )
        if t.failed_pairs and exhausted(chosen):
            # every learning-eligible pair already faulted this task: let
            # the overflow path place it on a fresh pair instead
            return None
        candidates = [w for w in self.capable_workers(chosen) if self.dispatchable(w)]
        if not candidates:
            return None
        worker = min(
            candidates,
            key=lambda w: (
                (chosen.name, w.name) in t.failed_pairs,
                self.estimated_busy_time(w),
                w.load(),
                w.name,
            ),
        )
        return chosen, worker

    def _earliest_executor(
        self,
        t: TaskInstance,
        versions: list[TaskVersion],
        group: SizeGroupProfile,
        *,
        allow_unknown: bool,
        require_room: bool,
        avoid: frozenset = frozenset(),
    ) -> Optional[tuple[TaskVersion, "Worker"]]:
        """Minimise (estimated busy time + version mean time) over
        (version, worker) pairs — the §IV-B earliest-executor rule.

        ``allow_unknown`` admits versions with no recorded mean yet
        (treated as the mean of the known versions, pessimistically the
        slowest known, so an unprofiled version never looks free).
        ``require_room`` restricts candidates to workers with queue room
        (used only while estimates are still unknown).  ``avoid`` is a
        set of (version name, worker name) pairs excluded from the
        search — the pairs a retried task has already faulted on.
        """
        known = [group.mean_time(v.name) for v in versions]
        known_means = [m for m in known if m is not None]
        fallback = max(known_means) if known_means else 0.0

        best: Optional[tuple[float, str, str]] = None
        best_pair: Optional[tuple[TaskVersion, "Worker"]] = None
        for v in versions:
            mean = group.mean_time(v.name)
            if mean is None:
                if not allow_unknown:
                    continue
                mean = fallback
            for w in self.capable_workers(v):
                if not self.dispatchable(w):
                    continue
                if (v.name, w.name) in avoid:
                    continue
                if require_room and not self._has_room(w):
                    continue
                finish = (
                    self.estimated_busy_time(w) + mean + self._placement_penalty(t, v, w)
                )
                key = (finish, w.name, v.name)
                if best is None or key < best:
                    best = key
                    best_pair = (v, w)
        return best_pair

    def _placement_penalty(
        self, t: TaskInstance, version: TaskVersion, worker: "Worker"
    ) -> float:
        """Extra cost of placing ``t`` on this worker (0 here; the
        locality variant adds estimated transfer time)."""
        return 0.0
