"""The versioning scheduler — the paper's contribution (§IV-B).

Policy summary:

* **Learning phase** (per task, per data-set-size group): "picking task
  versions from ready tasks in a Round-Robin fashion and distributing
  them among OmpSs workers.  ...  We force the scheduler to run each
  task version at least λ times."  Each version is dispatched until λ
  runs are underway; the group then graduates as soon as all versions
  have λ *recorded* executions.

* **Reliable-information phase**: each ready task goes to its
  **earliest executor** — over all (version, worker) pairs, minimise
  *worker estimated busy time* + *version mean execution time*.  The
  fastest executor usually wins, but a busy fastest executor loses to an
  idle slower one, exactly the Figure 5 scenario.

* The scheduler never stops learning: every completed task updates its
  version's running mean, and an unseen data-set size sends that group
  back to the learning phase.

Dispatch discipline
-------------------
Ready tasks enter the scheduler's pool and are *pumped* into per-worker
queues only while a worker has queue room (``queue_depth``, default 2 =
one running + one prefetching).  This bounded look-ahead mirrors how the
Nanos++ workers pick work and is what produces two emergent behaviours
the paper reports: "the SMP worker threads keep picking the SMP version
while the GPUs are busy", and "for the final part of the computation ...
only the GPUs run the fastest implementation to avoid losing
performance" — once the pool drains, the earliest executor of the few
remaining tasks is always a GPU.

Tunables (all exposed to the ablation benches): λ (``lam``), the
estimator kind (arithmetic mean / EWMA), the size-grouping strategy
(exact / relative range / fixed bins), ``queue_depth`` and an optional
warm-start profile table loaded from a hints file or profile store.

Warm-start policies
-------------------
``warm_start`` governs how much λ-credit preloaded (hints/store)
executions carry:

* ``trust`` — preloaded executions count fully toward λ: a group whose
  every version was preloaded with ≥ λ executions skips the learning
  phase outright,
* ``probation`` — preloaded credit is capped at ``λ - probation_lam``,
  so each preloaded version must still be re-validated by at least
  ``probation_lam`` live executions before the group graduates (a
  shortened learning phase),
* ``cold`` — hints are ignored entirely; full learning from scratch.

Fault-aware cost estimation
---------------------------
With ``fault_aware`` enabled the earliest-executor computation inflates
a worker's (busy time + mean) by ``1 / (1 - fault_rate)`` using the
observed transient-fault rate from the resilience counters: a
flaky-but-fast device is discounted before it faults again, because the
expected number of attempts per completed task there is ``1/(1-rate)``.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Deque, Optional

from repro.core.grouping import SizeGrouping, make_grouping
from repro.core.profile import SizeGroupProfile, VersionProfileTable
from repro.runtime.task import TaskInstance, TaskVersion
from repro.schedulers.base import Scheduler

if TYPE_CHECKING:  # pragma: no cover
    from repro.runtime.worker import Worker

#: Default λ: "we force the scheduler to run each task version at least
#: λ times during the initial learning phase" — configurable by the user
#: (footnote 4); three runs is the value our benches default to.
DEFAULT_LAMBDA = 3

#: Default per-worker queue bound (running + prefetching).
DEFAULT_QUEUE_DEPTH = 2

#: Valid warm-start policies for preloaded profile entries.
WARM_START_POLICIES = ("trust", "probation", "cold")


class VersioningScheduler(Scheduler):
    name = "versioning"
    supports_versions = True

    def __init__(
        self,
        *,
        lam: int = DEFAULT_LAMBDA,
        queue_depth: int = DEFAULT_QUEUE_DEPTH,
        estimator: str = "mean",
        estimator_options: Optional[dict] = None,
        grouping: "str | SizeGrouping" = "exact",
        grouping_options: Optional[dict] = None,
        hints: Optional[dict] = None,
        warm_start: str = "trust",
        probation_lam: int = 1,
        fault_aware: bool = False,
        fault_rate_cap: float = 0.9,
        reliable_queue_bound: Optional[int] = None,
    ) -> None:
        super().__init__()
        if lam < 1:
            raise ValueError("lam (λ) must be at least 1")
        if queue_depth < 1:
            raise ValueError("queue_depth must be at least 1")
        if reliable_queue_bound is not None and reliable_queue_bound < 1:
            raise ValueError("reliable_queue_bound must be at least 1")
        if warm_start not in WARM_START_POLICIES:
            raise ValueError(
                f"warm_start must be one of {WARM_START_POLICIES}, got {warm_start!r}"
            )
        if not 1 <= probation_lam <= lam:
            raise ValueError("probation_lam must be in [1, lam]")
        if not 0.0 <= fault_rate_cap < 1.0:
            raise ValueError("fault_rate_cap must be in [0, 1)")
        self.lam = lam
        self.queue_depth = queue_depth
        # When set, the reliable phase also gates dispatch on queue room
        # (late binding): tasks linger in the pool instead of sinking
        # into deep worker queues, which keeps them *stealable* — the
        # cluster scheduler's per-node instances run in this mode.
        self.reliable_queue_bound = reliable_queue_bound
        self.warm_start = warm_start
        self.probation_lam = probation_lam
        self.fault_aware = fault_aware
        self.fault_rate_cap = fault_rate_cap
        if isinstance(grouping, str):
            grouping = make_grouping(grouping, **(grouping_options or {}))
        elif grouping_options:
            raise ValueError("grouping_options only apply when grouping is a name")
        self.table = VersionProfileTable(
            grouping=grouping,
            estimator_kind=estimator,
            estimator_options=estimator_options,
        )
        self.preloaded_entries = 0
        if hints and warm_start != "cold":
            self.preloaded_entries = self.table.preload(hints)
        # ready tasks not yet placed in any worker queue (FIFO)
        self._pool: Deque[TaskInstance] = deque()
        # count of pooled tasks with a non-zero priority clause, kept in
        # step with every _pool mutation: _pump consults it per scan
        # instead of re-walking the pool
        self._prio_in_pool = 0
        self._pumping = False
        # worker name -> estimated busy time (sum of estimates of queued
        # + running tasks, §IV-B "OmpSs worker estimated busy time")
        self._busy_est: dict[str, float] = {}
        # task uid -> the estimate added at dispatch (to subtract at finish)
        self._est_by_uid: dict[int, float] = {}
        # diagnostics for tests/benches
        self.learning_dispatches = 0
        self.reliable_dispatches = 0
        # per-(task name, size-group key) dispatch counters, consumed by
        # the trace sanitizer's λ-consistency check (SAN-T005)
        self.group_dispatches: dict[tuple, dict[str, int]] = {}
        # (task name, size-group key) -> simulated time of the group's
        # first reliable-phase dispatch — the per-group end of learning;
        # time_to_reliable_phase() aggregates these for the warm-start
        # benches
        self.group_reliable_at: dict[tuple, float] = {}

    # ------------------------------------------------------------------
    def bind(self, runtime) -> None:  # type: ignore[override]
        super().bind(runtime)
        self._busy_est = {w.name: 0.0 for w in runtime.workers}

    # ------------------------------------------------------------------
    # Introspection helpers (used by tests and the Figure 5 bench)
    # ------------------------------------------------------------------
    def estimated_busy_time(self, worker: "Worker") -> float:
        """§IV-B: sum of estimated execution times of the worker's queue."""
        return self._busy_est[worker.name]

    def pool_size(self) -> int:
        return len(self._pool)

    def learning_credit(self, group: SizeGroupProfile, version_name: str) -> int:
        """Executions of ``version_name`` that count toward λ under this
        scheduler's warm-start policy.

        ``trust`` counts preloaded executions fully; ``probation`` caps
        their credit at ``λ - probation_lam`` so at least
        ``probation_lam`` live runs are still required; live executions
        always count in full.  (Under ``cold`` nothing was preloaded, so
        all three collapse to the raw execution count.)
        """
        p = group.profile(version_name)
        if p.preloaded <= 0 or self.warm_start != "probation":
            return p.executions
        return p.live_executions + min(p.preloaded, max(0, self.lam - self.probation_lam))

    def in_learning_phase(self, group: SizeGroupProfile, version_names: list[str]) -> bool:
        """True while any candidate version lacks λ credited executions."""
        return any(self.learning_credit(group, n) < self.lam for n in version_names)

    def time_to_reliable_phase(self) -> Optional[float]:
        """Simulated time at which the last size group seen so far left
        the learning phase (its first reliable dispatch), or ``None``
        when no group has graduated yet."""
        if not self.group_reliable_at:
            return None
        return max(self.group_reliable_at.values())

    def worker_fault_rate(self, worker: "Worker") -> float:
        """Observed transient-fault rate of ``worker`` (0 when the run
        has no resilience manager or no history)."""
        resilience = getattr(self.rt, "resilience", None)
        if resilience is None:
            return 0.0
        return resilience.worker_fault_rate(worker.name)

    def _has_room(self, worker: "Worker", bound: Optional[int] = None) -> bool:
        return worker.load() < (self.queue_depth if bound is None else bound)

    def _runnable_versions(self, t: TaskInstance) -> list[TaskVersion]:
        """Versions of ``t`` that at least one present worker can run."""
        out = [v for v in t.definition.versions if self.capable_workers(v)]
        if not out:
            raise RuntimeError(
                f"no worker on this machine can run any version of task {t.name!r}"
            )
        return out

    # ------------------------------------------------------------------
    # Runtime hooks
    # ------------------------------------------------------------------
    def task_ready(self, t: TaskInstance) -> None:
        self._pool.append(t)
        if t.priority:
            self._prio_in_pool += 1
        self._pump()

    def task_started(self, t: TaskInstance, worker: "Worker") -> None:
        self._pump()

    def steal_ready_task(self, accept) -> Optional[TaskInstance]:
        """Yield the youngest acceptable pool task to a work thief.

        Stealing from the tail (LIFO for thieves, FIFO for the owner) is
        the classic Cilk discipline: the owner keeps the tasks whose
        inputs it is already staging, the thief takes the coldest work.
        """
        for i in range(len(self._pool) - 1, -1, -1):
            t = self._pool[i]
            if accept(t):
                del self._pool[i]
                if t.priority:
                    self._prio_in_pool -= 1
                return t
        return None

    def task_finished(self, t: TaskInstance, worker: "Worker", measured: float) -> None:
        est = self._est_by_uid.pop(t.uid, 0.0)
        self._busy_est[worker.name] = max(0.0, self._busy_est[worker.name] - est)
        assert t.chosen_version is not None
        group = self.table.group(t.name, t.data_bytes)
        group.record(t.chosen_version.name, measured)
        self._pump()

    # ------------------------------------------------------------------
    # Resilience hooks
    # ------------------------------------------------------------------
    def task_speculated(
        self, t: TaskInstance, worker: "Worker", version: TaskVersion
    ) -> None:
        """Mirror dispatch bookkeeping for a speculative copy: its
        estimate joins the target worker's busy account and a pending
        learning assignment is noted, both undone symmetrically by
        ``task_finished`` (win) or ``task_requeued`` (withdrawal)."""
        group = self.table.group(t.name, t.data_bytes)
        est = group.mean_time(version.name)
        est_value = est if est is not None else 0.0
        self._busy_est[worker.name] += est_value
        self._est_by_uid[t.uid] = est_value
        group.note_assigned(version.name)

    def task_requeued(self, t: TaskInstance, worker: "Worker") -> None:
        """Undo the dispatch bookkeeping of a task pulled back by fault
        recovery: its busy-time estimate leaves the worker's account and
        its pending learning assignment is released — no duration is
        recorded, so the profile tables stay valid."""
        est = self._est_by_uid.pop(t.uid, None)
        if est is not None:
            self._busy_est[worker.name] = max(0.0, self._busy_est[worker.name] - est)
        if t.chosen_version is not None:
            group = self.table.group(t.name, t.data_bytes)
            group.note_unassigned(t.chosen_version.name)

    def worker_down(self, worker: "Worker") -> None:
        # per-task estimates were already released via task_requeued when
        # the runtime drained the queue; zero the account to kill any
        # floating-point residue (the worker never hosts work again)
        self._busy_est[worker.name] = 0.0

    def worker_up(self, worker: "Worker") -> None:
        self._pump()

    # ------------------------------------------------------------------
    # Dispatch pump
    # ------------------------------------------------------------------
    def _pump(self) -> None:
        """Place pool tasks into worker queues while there is room.

        Reentrancy guard: dispatching starts tasks, which calls back
        into ``task_started`` -> ``_pump``.
        """
        if self._pumping:
            return
        assert self.rt is not None
        self._pumping = True
        try:
            while self._pool:
                placed = False
                # groups found unplaceable in this scan: skip their other
                # tasks (same candidates, same full workers)
                blocked: set = set()
                # scan by the priority clause first (stable FIFO within
                # equal priorities); zero-priority pools keep plain order
                # (the counter tracks _pool mutations, so this is O(1))
                if self._prio_in_pool:
                    scan = sorted(
                        enumerate(self._pool), key=lambda it: (-it[1].priority, it[0])
                    )
                else:
                    scan = enumerate(self._pool)
                for i, t in scan:
                    gkey = (t.name, self.table.grouping.key(t.data_bytes))
                    if gkey in blocked:
                        continue
                    placement = self._choose(t)
                    if placement is None:
                        blocked.add(gkey)
                        continue
                    version, worker, learning = placement
                    del self._pool[i]
                    if t.priority:
                        self._prio_in_pool -= 1
                    group = self.table.group(t.name, t.data_bytes)
                    est = group.mean_time(version.name)
                    est_value = est if est is not None else 0.0
                    self._busy_est[worker.name] += est_value
                    self._est_by_uid[t.uid] = est_value
                    group.note_assigned(version.name)
                    counters = self.group_dispatches.setdefault(
                        gkey, {"learning": 0, "reliable": 0}
                    )
                    if learning:
                        self.learning_dispatches += 1
                        counters["learning"] += 1
                    else:
                        self.reliable_dispatches += 1
                        counters["reliable"] += 1
                        if gkey not in self.group_reliable_at:
                            self.group_reliable_at[gkey] = self.rt.engine.now
                    self.rt.dispatch(t, worker, version)
                    placed = True
                    break
                if not placed:
                    break
        finally:
            self._pumping = False

    def _choose(
        self, t: TaskInstance
    ) -> Optional[tuple[TaskVersion, "Worker", bool]]:
        """Pick (version, worker, is_learning) for ``t``, or None if no
        capable worker currently has queue room."""
        versions = self._runnable_versions(t)
        group = self.table.group(t.name, t.data_bytes)
        names = [v.name for v in versions]
        # version-fallback retry: a (version, worker) pair the task has
        # already faulted on is avoided while an alternative exists —
        # the paper's multi-version tables double as the degradation path
        avoid = frozenset(t.failed_pairs)

        if self.in_learning_phase(group, names):
            # λ-capped round-robin into workers with queue room.
            choice = self._learning_choice(t, versions, group)
            if choice is not None:
                return (*choice, True)
            # Every version already has λ runs underway but none recorded
            # yet: keep feeding workers that have room so nobody idles
            # while the slow λ-runs retire (estimates are still unknown,
            # so room-gating is the only sane throttle here).
            choice = self._earliest_executor(
                t, versions, group, allow_unknown=True, require_room=True, avoid=avoid
            )
            if choice is None and avoid:
                choice = self._earliest_executor(
                    t, versions, group, allow_unknown=True, require_room=True
                )
            if choice is not None:
                return (*choice, True)
            return None
        # Reliable phase: the paper pushes at ready time into unbounded
        # per-worker queues (Figure 5 shows deep task lists); the busy
        # estimate, not queue room, is what steers placement.  With
        # ``reliable_queue_bound`` set the push is room-gated instead
        # (late binding; tasks wait in the pool and stay stealable).
        bounded = self.reliable_queue_bound is not None
        choice = self._earliest_executor(
            t, versions, group, allow_unknown=False, require_room=bounded,
            room_bound=self.reliable_queue_bound, avoid=avoid
        )
        if choice is None and avoid:
            # every viable pair already faulted for this task: fall back
            # to the plain earliest executor rather than deadlocking
            choice = self._earliest_executor(
                t, versions, group, allow_unknown=False, require_room=bounded,
                room_bound=self.reliable_queue_bound
            )
        if choice is None:
            return None
        return (*choice, False)

    def _learning_choice(
        self, t: TaskInstance, versions: list[TaskVersion], group: SizeGroupProfile
    ) -> Optional[tuple[TaskVersion, "Worker"]]:
        """Round-robin λ executions per version, least-booked worker first.

        A version stops receiving learning dispatches once λ runs are
        *underway* (recorded + pending), so a burst of ready tasks does
        not flood a slow version's worker before any feedback arrives.
        """
        order = [v.name for v in versions]
        pending_needed = [
            v
            for v in versions
            if self.learning_credit(group, v.name) + group.profile(v.name).assigned
            < self.lam
        ]
        if not pending_needed:
            return None
        # The λ runs are mandatory: queue them even on a busy worker —
        # waiting for queue room would starve a version whose device is
        # saturated (exactly the GPU potrf case in Cholesky).
        # A version whose every dispatchable worker already faulted this
        # task (or that has no dispatchable worker at all) yields to the
        # alternatives — retries prefer a fresh (version, worker) pair.
        def exhausted(v: TaskVersion) -> bool:
            return all(
                (v.name, w.name) in t.failed_pairs
                for w in self.capable_workers(v)
                if self.dispatchable(w)
            )

        chosen = min(
            pending_needed,
            key=lambda v: (
                exhausted(v),
                self.learning_credit(group, v.name) + group.profile(v.name).assigned,
                order.index(v.name),
            ),
        )
        if t.failed_pairs and exhausted(chosen):
            # every learning-eligible pair already faulted this task: let
            # the overflow path place it on a fresh pair instead
            return None
        candidates = [w for w in self.capable_workers(chosen) if self.dispatchable(w)]
        if not candidates:
            return None
        worker = min(
            candidates,
            key=lambda w: (
                (chosen.name, w.name) in t.failed_pairs,
                self.estimated_busy_time(w),
                w.load(),
                w.name,
            ),
        )
        return chosen, worker

    def _earliest_executor(
        self,
        t: TaskInstance,
        versions: list[TaskVersion],
        group: SizeGroupProfile,
        *,
        allow_unknown: bool,
        require_room: bool,
        room_bound: Optional[int] = None,
        avoid: frozenset = frozenset(),
    ) -> Optional[tuple[TaskVersion, "Worker"]]:
        """Minimise (estimated busy time + version mean time) over
        (version, worker) pairs — the §IV-B earliest-executor rule.

        ``allow_unknown`` admits versions with no recorded mean yet
        (treated as the mean of the known versions, pessimistically the
        slowest known, so an unprofiled version never looks free).
        ``require_room`` restricts candidates to workers with queue room
        (used only while estimates are still unknown).  ``avoid`` is a
        set of (version name, worker name) pairs excluded from the
        search — the pairs a retried task has already faulted on.
        """
        known = [group.mean_time(v.name) for v in versions]
        known_means = [m for m in known if m is not None]
        fallback = max(known_means) if known_means else 0.0

        # hoisted invariants: no simulation event runs inside this scan,
        # so engine.now and the busy-estimate table are constant
        assert self.rt is not None
        now = self.rt.engine.now
        busy = self._busy_est
        fault_aware = self.fault_aware
        best: Optional[tuple[float, str, str]] = None
        best_pair: Optional[tuple[TaskVersion, "Worker"]] = None
        for v, mean in zip(versions, known):
            if mean is None:
                if not allow_unknown:
                    continue
                mean = fallback
            vname = v.name
            for w in self.capable_workers(v):
                if not w.available(now):
                    continue
                if avoid and (vname, w.name) in avoid:
                    continue
                if require_room and not self._has_room(w, room_bound):
                    continue
                finish = busy[w.name] + mean
                if fault_aware:
                    # expected attempts per completed task on a worker
                    # with transient-fault rate p is 1/(1-p): inflate the
                    # whole busy+exec estimate so a flaky-but-fast device
                    # is discounted before it faults again
                    rate = self.worker_fault_rate(w)
                    if rate > 0.0:
                        finish /= 1.0 - min(rate, self.fault_rate_cap)
                finish += self._placement_penalty(t, v, w)
                key = (finish, w.name, vname)
                if best is None or key < best:
                    best = key
                    best_pair = (v, w)
        return best_pair

    def _placement_penalty(
        self, t: TaskInstance, version: TaskVersion, worker: "Worker"
    ) -> float:
        """Extra cost of placing ``t`` on this worker (0 here; the
        locality variant adds estimated transfer time)."""
        return 0.0
