"""Data-set-size grouping strategies.

The scheduler keys its learned profiles by the task's data-set size:
"each set is divided into different groups, according to the amount of
data needed by each task instance" (§IV-B, Table I).

The paper's implementation matches sizes *exactly* and its conclusions
call that out as a weakness: "if the data needed by two calls to the
same task varies from only 1 byte, the scheduler will consider that
these calls belong to different groups ... it would be better to define
the data sizes of each group in a reasonable range" (§VII).  Both the
exact strategy and the proposed range strategy are provided; the
grouping ablation bench measures the difference on a jittered workload.
"""

from __future__ import annotations

import math
from typing import Any, Hashable


class SizeGrouping:
    """Maps a data-set size in bytes to a group key."""

    name: str = "base"

    def key(self, nbytes: int) -> Hashable:
        raise NotImplementedError

    def label(self, key: Hashable) -> str:
        """Human-readable rendering of a group key (for Table I output)."""
        return str(key)

    @staticmethod
    def _check(nbytes: int) -> None:
        if nbytes < 0:
            raise ValueError(f"negative data-set size: {nbytes}")


class ExactSizeGrouping(SizeGrouping):
    """The paper's implemented policy: exact byte-for-byte matching."""

    name = "exact"

    def key(self, nbytes: int) -> int:
        self._check(nbytes)
        return int(nbytes)

    def label(self, key: Hashable) -> str:
        return _fmt_bytes(int(key))  # type: ignore[arg-type]


class RelativeSizeGrouping(SizeGrouping):
    """Future-work policy: sizes within a relative tolerance share a group.

    Buckets are geometric: the group key is
    ``round(log(size) / log(1 + tolerance))``, so any two sizes whose
    ratio is below roughly ``1 + tolerance`` land in the same or an
    adjacent bucket.  Zero-sized tasks get their own group.
    """

    name = "relative"

    def __init__(self, tolerance: float = 0.10) -> None:
        if tolerance <= 0:
            raise ValueError("tolerance must be positive")
        self.tolerance = tolerance
        self._log_base = math.log1p(tolerance)

    def key(self, nbytes: int) -> int:
        self._check(nbytes)
        if nbytes == 0:
            return -1
        return int(round(math.log(nbytes) / self._log_base))

    def label(self, key: Hashable) -> str:
        k = int(key)  # type: ignore[arg-type]
        if k == -1:
            return "0 B"
        centre = math.exp(k * self._log_base)
        return f"~{_fmt_bytes(int(centre))} (±{self.tolerance * 100:.0f}%)"


class FixedBinGrouping(SizeGrouping):
    """Sizes bucketed into fixed-width bins of ``bin_bytes``."""

    name = "fixed-bin"

    def __init__(self, bin_bytes: int = 1024**2) -> None:
        if bin_bytes <= 0:
            raise ValueError("bin_bytes must be positive")
        self.bin_bytes = bin_bytes

    def key(self, nbytes: int) -> int:
        self._check(nbytes)
        return nbytes // self.bin_bytes

    def label(self, key: Hashable) -> str:
        k = int(key)  # type: ignore[arg-type]
        return f"[{_fmt_bytes(k * self.bin_bytes)}, {_fmt_bytes((k + 1) * self.bin_bytes)})"


def make_grouping(kind: str = "exact", **options: Any) -> SizeGrouping:
    """Factory used by scheduler options: exact | relative | fixed-bin."""
    kind = kind.lower()
    if kind == "exact":
        if options:
            raise ValueError(f"ExactSizeGrouping takes no options, got {options}")
        return ExactSizeGrouping()
    if kind in ("relative", "range"):
        return RelativeSizeGrouping(**options)
    if kind in ("fixed-bin", "fixed", "bin"):
        return FixedBinGrouping(**options)
    raise ValueError(f"unknown grouping kind {kind!r}")


def _fmt_bytes(n: int) -> str:
    """Render a byte count the way Table I does (2 MB, 3 MB, ...)."""
    units = ["B", "KB", "MB", "GB", "TB"]
    value = float(n)
    for unit in units:
        if value < 1024.0 or unit == units[-1]:
            if value == int(value):
                return f"{int(value)} {unit}"
            return f"{value:.1f} {unit}"
        value /= 1024.0
    raise AssertionError("unreachable")
