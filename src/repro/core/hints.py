"""External hint files for the versioning scheduler (future work, §VII).

"The scheduler should also offer the possibility to receive external
hints for tasks versions: for example, read an XML file with additional
information about tasks versions.  This file can be written by the
user, but it could also be written by OmpSs runtime from a previous
application's execution."

Both halves are implemented: :func:`save_hints` snapshots a scheduler's
profile table after a run, :func:`load_hints` reads it back so a new run
skips (or shortens) the learning phase.  XML is the paper's suggested
format; JSON is provided for convenience.  The format is inferred from
the file extension unless forced.
"""

from __future__ import annotations

import json
import xml.etree.ElementTree as ET
from pathlib import Path
from typing import Optional, Union

from repro.core.profile import VersionProfileTable

PathLike = Union[str, Path]


def save_hints(
    table: VersionProfileTable, path: PathLike, *, format: Optional[str] = None
) -> None:
    """Write a profile-table snapshot to ``path`` (xml or json)."""
    path = Path(path)
    fmt = _resolve_format(path, format)
    snapshot = table.to_dict()
    if fmt == "json":
        path.write_text(json.dumps(snapshot, indent=2, sort_keys=True))
    else:
        path.write_bytes(_to_xml(snapshot))


def load_hints(path: PathLike, *, format: Optional[str] = None) -> dict:
    """Read a hints file; returns the snapshot dict.

    Feed the result to ``VersioningScheduler(hints=...)`` or to
    :meth:`VersionProfileTable.preload`.
    """
    path = Path(path)
    fmt = _resolve_format(path, format)
    if fmt == "json":
        try:
            snapshot = json.loads(path.read_text())
        except json.JSONDecodeError as exc:
            raise ValueError(
                f"malformed hints JSON in {path}: truncated or invalid ({exc})"
            ) from exc
        _validate(snapshot)
        return snapshot
    return _from_xml(path.read_bytes())


def _resolve_format(path: Path, fmt: Optional[str]) -> str:
    if fmt is None:
        fmt = path.suffix.lstrip(".").lower() or "xml"
    fmt = fmt.lower()
    if fmt not in ("xml", "json"):
        raise ValueError(f"unsupported hints format {fmt!r} (use 'xml' or 'json')")
    return fmt


def _validate(snapshot: dict) -> None:
    if not isinstance(snapshot, dict) or "tasks" not in snapshot:
        raise ValueError("malformed hints: missing top-level 'tasks'")
    for task_name, groups in snapshot["tasks"].items():
        if not isinstance(groups, list):
            raise ValueError(f"malformed hints for task {task_name!r}: groups not a list")
        for g in groups:
            if "representative_bytes" not in g:
                raise ValueError(
                    f"malformed hints for task {task_name!r}: group lacks "
                    "'representative_bytes'"
                )


def _to_xml(snapshot: dict) -> bytes:
    root = ET.Element(
        "versioning-hints",
        grouping=str(snapshot.get("grouping", "exact")),
        estimator=str(snapshot.get("estimator", "mean")),
    )
    for task_name in sorted(snapshot.get("tasks", {})):
        task_el = ET.SubElement(root, "task", name=task_name)
        for g in snapshot["tasks"][task_name]:
            grp_el = ET.SubElement(
                task_el, "group", bytes=str(int(g["representative_bytes"]))
            )
            for vname in sorted(g.get("versions", {})):
                stats = g["versions"][vname]
                if stats.get("mean_time") is None:
                    continue
                attrs = {
                    "name": vname,
                    "mean_time": repr(float(stats["mean_time"])),
                    "executions": str(int(stats["executions"])),
                }
                if stats.get("variance") is not None:
                    attrs["variance"] = repr(float(stats["variance"]))
                ET.SubElement(grp_el, "version", attrs)
    ET.indent(root)
    return ET.tostring(root, xml_declaration=True, encoding="utf-8")


def _from_xml(payload: bytes) -> dict:
    try:
        root = ET.fromstring(payload)
    except ET.ParseError as exc:
        raise ValueError(f"malformed hints XML: {exc}") from exc
    if root.tag != "versioning-hints":
        raise ValueError(f"not a hints file (root element {root.tag!r})")
    out: dict = {
        "grouping": root.get("grouping", "exact"),
        "estimator": root.get("estimator", "mean"),
        "tasks": {},
    }
    for task_el in root.findall("task"):
        name = task_el.get("name")
        if not name:
            raise ValueError("hints XML: <task> without name")
        groups = []
        for grp_el in task_el.findall("group"):
            versions = {}
            for v_el in grp_el.findall("version"):
                vname = v_el.get("name")
                if not vname:
                    raise ValueError("hints XML: <version> without name")
                versions[vname] = {
                    "mean_time": float(v_el.get("mean_time", "nan")),
                    "executions": int(v_el.get("executions", "0")),
                }
                if v_el.get("variance") is not None:
                    versions[vname]["variance"] = float(v_el.get("variance"))
            groups.append(
                {
                    "representative_bytes": int(grp_el.get("bytes", "0")),
                    "versions": versions,
                }
            )
        out["tasks"][name] = groups
    return out
