"""The paper's three evaluation applications, plus shared helpers.

* :mod:`repro.apps.matmul` — tiled dense matrix multiplication with up
  to three task versions (CUBLAS-like, hand-coded CUDA-like, CBLAS-like
  SMP), §V-B1,
* :mod:`repro.apps.cholesky` — tiled Cholesky factorization over
  potrf/trsm/syrk/gemm tasks, §V-B2,
* :mod:`repro.apps.pbpi` — Bayesian phylogenetic inference (MCMC over
  per-generation likelihood loops), §V-B3,
* :mod:`repro.apps.kernels` — NumPy reference kernels used in
  real-execution mode so results are numerically verifiable,
* :mod:`repro.apps.base` — the common application driver.

Every application runs in two modes: *simulated data* (regions carry
sizes only; the default, matching the paper's problem sizes) and *real
data* (small NumPy arrays actually computed on, for correctness tests).
"""

from repro.apps.base import AppResult, Application
from repro.apps.matmul import MatmulApp
from repro.apps.cholesky import CholeskyApp
from repro.apps.pbpi import PBPIApp

__all__ = ["AppResult", "Application", "MatmulApp", "CholeskyApp", "PBPIApp"]
