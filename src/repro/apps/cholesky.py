"""Tiled Cholesky factorization (§V-B2).

"The matrix A is organized in blocks of 2048 x 2048 single-precision
floating point elements, with a total of 32768 x 32768 elements.  There
are four annotated tasks: potrf, syrk, gemm and trsm.  For the last
three tasks we give a single GPU-targeted implementation that calls
MAGMA or CUBLAS libraries.  For the potrf, we give two different
implementations: one calls CBLAS and runs on the CPU and the other one
calls MAGMA and runs on the GPU."

potrf sits on the critical path ("it acts like a bottleneck"), which is
what makes this application interesting for the versioning scheduler:
with the paper's small task count, the learning phase is visible in the
results, and in the reliable phase the scheduler routes (nearly) all
potrf work to the GPUs because the graph offers too little look-ahead
to hide a slow SMP potrf (Figure 11).

Variants:

* ``smp`` (*potrf-smp*): potrf has only the CBLAS/CPU version,
* ``gpu`` (*potrf-gpu*): potrf has only the MAGMA/GPU version,
* ``hyb`` (*potrf-hyb*): potrf has both; trsm/syrk/gemm are GPU-only in
  every variant ("running them on the CPU would take too much time").
"""

from __future__ import annotations

import numpy as np

from repro.apps import kernels
from repro.apps.base import Application
from repro.runtime.dataregion import DataRegion
from repro.runtime.directives import task, target
from repro.runtime.runtime import OmpSsRuntime
from repro.sim.perfmodel import FlopsCostModel
from repro.sim.topology import Machine

#: Calibrated sustained single-precision rates (GFLOP/s) on the M2090
#: generation for the MAGMA/CUBLAS kernels, and CBLAS on one Xeon core.
GPU_SGEMM_GFLOPS = 600.0
GPU_STRSM_GFLOPS = 350.0
GPU_SSYRK_GFLOPS = 420.0
GPU_SPOTRF_GFLOPS = 180.0
SMP_SPOTRF_GFLOPS = 1.2
GPU_LAUNCH_OVERHEAD = 25e-6

VERSION_LEGEND = {
    "potrf_magma": "GPU",
    "potrf_cblas": "SMP",
}


class CholeskyApp(Application):
    """Right-looking tiled Cholesky: A = L @ L^T, lower triangular."""

    name = "cholesky"
    VARIANTS = ("smp", "gpu", "hyb")

    def __init__(
        self,
        n_blocks: int = 16,
        block_size: int = 2048,
        *,
        variant: str = "hyb",
        dtype: type = np.float32,
        real: bool = False,
        seed: int = 0,
        potrf_priority: int = 0,
    ) -> None:
        if variant not in self.VARIANTS:
            raise ValueError(f"variant must be one of {self.VARIANTS}, got {variant!r}")
        if n_blocks < 1 or block_size < 1:
            raise ValueError("n_blocks and block_size must be positive")
        super().__init__(variant)
        self.n_blocks = n_blocks
        self.block_size = block_size
        self.dtype = np.dtype(dtype)
        self.real = real
        self.seed = seed
        #: OmpSs ``priority`` clause on potrf: the task "acts like a
        #: bottleneck ... if it is not run as soon as its data
        #: dependencies are satisfied, there is less parallelism to
        #: exploit" (§V-B2) — raising its priority lets it jump queues.
        self.potrf_priority = potrf_priority
        self._build_data()
        self._build_tasks()

    def submission_args(self) -> Optional[dict]:
        if self.real or self.dtype != np.dtype(np.float32):
            return None
        return {
            "n_blocks": self.n_blocks,
            "block_size": self.block_size,
            "variant": self.variant,
            "seed": self.seed,
            "potrf_priority": self.potrf_priority,
        }

    # ------------------------------------------------------------------
    def _build_data(self) -> None:
        nb, bs = self.n_blocks, self.block_size
        nbytes = bs * bs * self.dtype.itemsize
        if self.real:
            rng = np.random.default_rng(self.seed)
            n = nb * bs
            # symmetric positive definite: M @ M^T + n*I
            m = rng.standard_normal((n, n)).astype(self.dtype)
            full = (m @ m.T + n * np.eye(n, dtype=self.dtype)).astype(self.dtype)
            self._full_input = full.copy()
            self.A = [
                [
                    np.ascontiguousarray(full[i * bs : (i + 1) * bs, j * bs : (j + 1) * bs])
                    for j in range(nb)
                ]
                for i in range(nb)
            ]
        else:
            self.A = [
                [DataRegion(("A", i, j), nbytes, label=f"A[{i},{j}]") for j in range(nb)]
                for i in range(nb)
            ]

    def _build_tasks(self) -> None:
        bs = self.block_size

        # -- potrf: the multi-version task -----------------------------
        potrf_work = lambda A: {"flops": kernels.potrf_flops(bs), "n": bs}  # noqa: E731
        if self.variant == "smp":
            self.potrf = task(
                kernels.potrf_block,
                inouts=["A"],
                work=potrf_work,
                device="smp",
                priority=self.potrf_priority,
                name="potrf_cblas",
                registry=self.registry,
            )
        else:
            self.potrf = task(
                kernels.potrf_block,
                inouts=["A"],
                work=potrf_work,
                device="cuda",
                priority=self.potrf_priority,
                name="potrf_magma",
                registry=self.registry,
            )
            if self.variant == "hyb":
                target(device="smp", implements=self.potrf)(
                    task(
                        kernels.potrf_block,
                        inouts=["A"],
                        work=potrf_work,
                        priority=self.potrf_priority,
                        name="potrf_cblas",
                        registry=self.registry,
                    )
                )

        # -- trsm / syrk / gemm: single GPU version each ----------------
        self.trsm = task(
            kernels.trsm_block,
            inputs=["L"],
            inouts=["A"],
            work=lambda L, A: {"flops": kernels.trsm_flops(bs), "n": bs},
            device="cuda",
            name="trsm_cublas",
            registry=self.registry,
        )
        self.syrk = task(
            kernels.syrk_block,
            inputs=["A"],
            inouts=["C"],
            work=lambda A, C: {"flops": kernels.syrk_flops(bs), "n": bs},
            device="cuda",
            name="syrk_cublas",
            registry=self.registry,
        )
        self.gemm = task(
            kernels.gemm_update_block,
            inputs=["A", "B"],
            inouts=["C"],
            work=lambda A, B, C: {"flops": kernels.gemm_flops(bs), "n": bs},
            device="cuda",
            name="gemm_magma",
            registry=self.registry,
        )

    # ------------------------------------------------------------------
    def register_cost_models(self, machine: Machine) -> None:
        has_smp = bool(machine.devices_of_kind("smp"))
        has_gpu = bool(machine.devices_of_kind("cuda"))
        if self.variant != "smp" and has_gpu:
            machine.register_kernel_for_kind(
                "cuda", "potrf_magma", FlopsCostModel(GPU_SPOTRF_GFLOPS, GPU_LAUNCH_OVERHEAD)
            )
        if self.variant != "gpu" and has_smp:
            machine.register_kernel_for_kind(
                "smp", "potrf_cblas", FlopsCostModel(SMP_SPOTRF_GFLOPS)
            )
        machine.register_kernel_for_kind(
            "cuda", "trsm_cublas", FlopsCostModel(GPU_STRSM_GFLOPS, GPU_LAUNCH_OVERHEAD)
        )
        machine.register_kernel_for_kind(
            "cuda", "syrk_cublas", FlopsCostModel(GPU_SSYRK_GFLOPS, GPU_LAUNCH_OVERHEAD)
        )
        machine.register_kernel_for_kind(
            "cuda", "gemm_magma", FlopsCostModel(GPU_SGEMM_GFLOPS, GPU_LAUNCH_OVERHEAD)
        )

    def master(self, rt: OmpSsRuntime) -> None:
        nb = self.n_blocks
        A = self.A
        for k in range(nb):
            self.potrf(A[k][k])
            for i in range(k + 1, nb):
                self.trsm(A[k][k], A[i][k])
            for i in range(k + 1, nb):
                self.syrk(A[i][k], A[i][i])
                for j in range(k + 1, i):
                    self.gemm(A[i][k], A[j][k], A[i][j])

    def total_flops(self) -> float:
        return kernels.cholesky_total_flops(self.n_blocks, self.block_size)

    def task_count(self) -> int:
        nb = self.n_blocks
        return nb + 2 * (nb * (nb - 1) // 2) + sum(
            (nb - k - 1) * (nb - k - 2) // 2 for k in range(nb)
        )

    # ------------------------------------------------------------------
    def assembled_L(self) -> np.ndarray:
        """Lower-triangular result assembled from blocks (real mode)."""
        if not self.real:
            raise RuntimeError("assembled_L requires real=True")
        nb, bs = self.n_blocks, self.block_size
        n = nb * bs
        L = np.zeros((n, n), dtype=self.dtype)
        for i in range(nb):
            for j in range(nb):
                if j <= i:
                    L[i * bs : (i + 1) * bs, j * bs : (j + 1) * bs] = self.A[i][j]
        return np.tril(L)

    def reference_L(self) -> np.ndarray:
        if not self.real:
            raise RuntimeError("reference_L requires real=True")
        return np.linalg.cholesky(self._full_input.astype(np.float64)).astype(self.dtype)
