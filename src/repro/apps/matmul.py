"""Tiled dense matrix multiplication (§V-B1).

"The application performs a dense matrix multiplication of two square
matrices.  Each matrix is divided in tiles; each created task performs a
matrix multiplication operation on a given block of the destination
matrix ...  We used three different kernels to do this computation: the
CUBLAS kernel and a hand-coded CUDA implementation (both for a GPU
architecture) and an SMP-targeted kernel calling the CBLAS library."

Paper configuration: 16384 x 16384 double-precision elements (2 GB per
matrix), 1024 x 1024 tiles (8 MB), i.e. a 16 x 16 tile grid and 16^3 =
4096 gemm tasks chained (inout on each C tile) in k.

Variants:

* ``gpu`` (*mm-gpu*): only the CUBLAS-like GPU version exists,
* ``hyb`` (*mm-hyb*): main CUBLAS-like version plus a hand-coded-CUDA
  version (slower GPU kernel) and a CBLAS SMP version (~60x slower than
  CUBLAS on a tile, matching §V-B1).
"""

from __future__ import annotations

import numpy as np

from repro.apps import kernels
from repro.apps.base import Application
from repro.runtime.dataregion import DataRegion
from repro.runtime.directives import task, target
from repro.runtime.runtime import OmpSsRuntime
from repro.sim.perfmodel import GemmCostModel
from repro.sim.topology import (
    GPU_CUBLAS_DGEMM_GFLOPS,
    GPU_HANDCODED_DGEMM_GFLOPS,
    Machine,
    SMP_DGEMM_GFLOPS,
)

#: Kernel launch / BLAS call overhead applied to the GPU versions.
GPU_LAUNCH_OVERHEAD = 20e-6

#: Human-readable names used in the paper's Figure 8 legend.
VERSION_LEGEND = {
    "matmul_tile_cublas": "CUBLAS",
    "matmul_tile_cuda": "CUDA",
    "matmul_tile_cblas": "SMP",
}


class MatmulApp(Application):
    """Tiled matmul: C[i,j] += A[i,k] @ B[k,j] over an NTxNT tile grid."""

    name = "matmul"
    VARIANTS = ("gpu", "hyb")

    def __init__(
        self,
        n_tiles: int = 16,
        tile_size: int = 1024,
        *,
        variant: str = "hyb",
        dtype: type = np.float64,
        real: bool = False,
        seed: int = 0,
    ) -> None:
        if variant not in self.VARIANTS:
            raise ValueError(f"variant must be one of {self.VARIANTS}, got {variant!r}")
        if n_tiles < 1 or tile_size < 1:
            raise ValueError("n_tiles and tile_size must be positive")
        super().__init__(variant)
        self.n_tiles = n_tiles
        self.tile_size = tile_size
        self.dtype = np.dtype(dtype)
        self.real = real
        self.seed = seed
        self._build_data()
        self._build_tasks()

    def submission_args(self) -> Optional[dict]:
        if self.real or self.dtype != np.dtype(np.float64):
            return None
        return {
            "n_tiles": self.n_tiles,
            "tile_size": self.tile_size,
            "variant": self.variant,
            "seed": self.seed,
        }

    # ------------------------------------------------------------------
    def _build_data(self) -> None:
        nt, bs = self.n_tiles, self.tile_size
        nbytes = bs * bs * self.dtype.itemsize
        if self.real:
            rng = np.random.default_rng(self.seed)
            self.A = [[rng.standard_normal((bs, bs)).astype(self.dtype) for _ in range(nt)]
                      for _ in range(nt)]
            self.B = [[rng.standard_normal((bs, bs)).astype(self.dtype) for _ in range(nt)]
                      for _ in range(nt)]
            self.C = [[np.zeros((bs, bs), dtype=self.dtype) for _ in range(nt)]
                      for _ in range(nt)]
        else:
            self.A = [[DataRegion(("A", i, j), nbytes, label=f"A[{i},{j}]")
                       for j in range(nt)] for i in range(nt)]
            self.B = [[DataRegion(("B", i, j), nbytes, label=f"B[{i},{j}]")
                       for j in range(nt)] for i in range(nt)]
            self.C = [[DataRegion(("C", i, j), nbytes, label=f"C[{i},{j}]")
                       for j in range(nt)] for i in range(nt)]

    def _build_tasks(self) -> None:
        bs = self.tile_size
        work = lambda A, B, C: {"n": bs}  # noqa: E731 - tiny clause helper

        # Main version: CUBLAS on the GPU (Figure 2 of the paper).
        self.matmul_tile = task(
            kernels.gemm_tile,
            inputs=["A", "B"],
            inouts=["C"],
            work=work,
            device="cuda",
            name="matmul_tile_cublas",
            registry=self.registry,
        )
        if self.variant == "hyb":
            # Hand-coded CUDA kernel (Figure 3).
            target(device="cuda", implements=self.matmul_tile)(
                task(
                    kernels.gemm_tile,
                    inputs=["A", "B"],
                    inouts=["C"],
                    work=work,
                    name="matmul_tile_cuda",
                    registry=self.registry,
                )
            )
            # CBLAS on one SMP core (Figure 1).
            target(device="smp", implements=self.matmul_tile)(
                task(
                    kernels.gemm_tile,
                    inputs=["A", "B"],
                    inouts=["C"],
                    work=work,
                    name="matmul_tile_cblas",
                    registry=self.registry,
                )
            )

    # ------------------------------------------------------------------
    def register_cost_models(self, machine: Machine) -> None:
        # Register each kernel only where the machine has matching
        # devices — a hybrid application must stay runnable on (say) a
        # CPU-only node through its SMP version alone.
        if machine.devices_of_kind("cuda"):
            machine.register_kernel_for_kind(
                "cuda",
                "matmul_tile_cublas",
                GemmCostModel(GPU_CUBLAS_DGEMM_GFLOPS, GPU_LAUNCH_OVERHEAD),
            )
            if self.variant == "hyb":
                machine.register_kernel_for_kind(
                    "cuda",
                    "matmul_tile_cuda",
                    GemmCostModel(GPU_HANDCODED_DGEMM_GFLOPS, GPU_LAUNCH_OVERHEAD),
                )
        if self.variant == "hyb" and machine.devices_of_kind("smp"):
            machine.register_kernel_for_kind(
                "smp", "matmul_tile_cblas", GemmCostModel(SMP_DGEMM_GFLOPS)
            )

    def master(self, rt: OmpSsRuntime) -> None:
        nt = self.n_tiles
        for i in range(nt):
            for j in range(nt):
                for k in range(nt):
                    self.matmul_tile(self.A[i][k], self.B[k][j], self.C[i][j])

    def total_flops(self) -> float:
        n = self.n_tiles * self.tile_size
        return 2.0 * float(n) ** 3

    # ------------------------------------------------------------------
    def reference_result(self) -> np.ndarray:
        """Dense NumPy product of the full matrices (real mode only)."""
        if not self.real:
            raise RuntimeError("reference_result requires real=True")
        A = np.block(self.A)
        B = np.block(self.B)
        return A @ B

    def assembled_C(self) -> np.ndarray:
        if not self.real:
            raise RuntimeError("assembled_C requires real=True")
        return np.block(self.C)
