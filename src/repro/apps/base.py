"""Common application driver.

Each application owns a private task registry (its task set is rebuilt
per instance, so repeated runs in one process never collide), knows how
to register its kernels' cost models on a machine, and submits its task
graph through a master-thread body.  :meth:`Application.run` wires those
pieces to an :class:`~repro.runtime.runtime.OmpSsRuntime` and returns an
:class:`AppResult`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping, Optional, Union

from repro.runtime.runtime import OmpSsRuntime, RunResult, RuntimeConfig
from repro.sim.topology import Machine


@dataclass
class AppResult:
    """A finished application run plus app-level derived metrics."""

    app: str
    variant: str
    run: RunResult
    total_flops: Optional[float] = None

    @property
    def makespan(self) -> float:
        return self.run.makespan

    @property
    def gflops(self) -> Optional[float]:
        """Aggregate GFLOP/s (None for apps reported by time, like PBPI)."""
        if self.total_flops is None:
            return None
        return self.run.gflops(self.total_flops)

    def summary(self) -> str:
        perf = (
            f"{self.gflops:8.1f} GFLOP/s"
            if self.gflops is not None
            else f"{self.makespan:8.3f} s"
        )
        tx = self.run.transfer_stats
        gb = 1024**3
        return (
            f"{self.app}-{self.variant:<4} [{self.run.scheduler:<20}] {perf}  "
            f"in={tx.input_tx / gb:6.2f}GB out={tx.output_tx / gb:6.2f}GB "
            f"dev={tx.device_tx / gb:6.2f}GB  tasks={self.run.tasks_completed}"
        )


class Application:
    """Base class for the paper's applications."""

    name: str = "app"

    def __init__(self, variant: str) -> None:
        self.variant = variant
        self.registry: dict = {}

    # -- subclass interface -------------------------------------------
    def register_cost_models(self, machine: Machine) -> None:
        """Teach the machine what this app's kernels cost per device."""
        raise NotImplementedError

    def master(self, rt: OmpSsRuntime) -> None:
        """The master-thread body: create and submit all tasks."""
        raise NotImplementedError

    def total_flops(self) -> Optional[float]:
        """Total useful flops, for GFLOP/s reporting (None = report time)."""
        return None

    def submission_args(self) -> Optional[dict]:
        """Constructor kwargs that rebuild this instance, as JSON data.

        The service router sends these as a submission spec's
        ``app_args``; returning None marks the instance as not
        wire-expressible (e.g. real arithmetic, exotic dtypes) and
        forces the local path.
        """
        return None

    # -- driver ---------------------------------------------------------
    def run(
        self,
        machine: Machine,
        scheduler: Union[str, Any] = "versioning",
        *,
        scheduler_options: Optional[Mapping[str, Any]] = None,
        config: Optional[RuntimeConfig] = None,
        fault_plan: Optional[Any] = None,
        recovery: Optional[Any] = None,
    ) -> AppResult:
        """Execute the application on ``machine`` under ``scheduler``.

        ``fault_plan`` / ``recovery`` are forwarded verbatim to the
        runtime, so chaos experiments can run an unmodified application
        under an unreliable interconnect or node crashes.

        While a :func:`repro.service.routing.route_via_service` context
        is active, the run is submitted to the scheduler service instead
        of simulating locally (falling back here whenever the call is
        not wire-expressible); drivers cannot tell the paths apart.
        """
        from repro.service.routing import active_router

        router = active_router()
        if router is not None:
            routed = router.try_submit(
                self,
                machine,
                scheduler,
                scheduler_options=scheduler_options,
                config=config,
                fault_plan=fault_plan,
                recovery=recovery,
            )
            if routed is not None:
                return routed
        self.register_cost_models(machine)
        rt = OmpSsRuntime(
            machine,
            scheduler,
            config=config,
            scheduler_options=scheduler_options,
            fault_plan=fault_plan,
            recovery=recovery,
        )
        with rt:
            self.master(rt)
        return AppResult(
            app=self.name,
            variant=self.variant,
            run=rt.result(),
            total_flops=self.total_flops(),
        )
