"""NumPy reference kernels.

In real-execution mode the task bodies call these, so application
results can be checked against ``numpy``/direct computation.  In
simulated-data mode task arguments are bare :class:`DataRegion` handles
and every kernel is a no-op (guarded by :func:`is_real`).

The kernels deliberately mirror the BLAS/LAPACK operations the paper's
applications call (gemm, potrf, trsm, syrk) — all versions of a task
perform the *same* computation, only their simulated cost differs.
"""

from __future__ import annotations

from typing import Any

import numpy as np


def is_real(*objs: Any) -> bool:
    """True when the task arguments are actual arrays (real mode)."""
    return all(isinstance(o, np.ndarray) for o in objs)


# ----------------------------------------------------------------------
# Matrix multiplication
# ----------------------------------------------------------------------
def gemm_tile(A: Any, B: Any, C: Any) -> None:
    """C += A @ B on one tile (the body of every matmul task version)."""
    if is_real(A, B, C):
        C += A @ B


# ----------------------------------------------------------------------
# Cholesky factorization (lower-triangular, in place, tiled)
# ----------------------------------------------------------------------
def potrf_block(A: Any) -> None:
    """A <- cholesky(A), lower triangular."""
    if is_real(A):
        A[:] = np.linalg.cholesky(A)


def trsm_block(L: Any, A: Any) -> None:
    """A <- A @ inv(L)^T for the panel update (right solve, lower L).

    Solves X @ L^T = A, i.e. X = A @ inv(L^T); implemented via
    ``np.linalg.solve`` on the transposed system L @ X^T = A^T.
    """
    if is_real(L, A):
        A[:] = np.linalg.solve(L, A.T).T


def syrk_block(A: Any, C: Any) -> None:
    """C <- C - A @ A^T (symmetric rank-k update of a diagonal block)."""
    if is_real(A, C):
        C -= A @ A.T


def gemm_update_block(A: Any, B: Any, C: Any) -> None:
    """C <- C - A @ B^T (trailing update)."""
    if is_real(A, B, C):
        C -= A @ B.T


# ----------------------------------------------------------------------
# PBPI (synthetic phylogenetic-likelihood loops)
# ----------------------------------------------------------------------
def pbpi_loop1(seq: Any, tree: Any, lik: Any) -> None:
    """Conditional-likelihood evaluation for one partition block.

    The synthetic stand-in mixes the sequence block with the current
    tree-state vector — enough real arithmetic that correctness tests
    can verify dataflow through generations.
    """
    if is_real(seq, tree, lik):
        lik[:] = np.tanh(seq * tree[: len(seq)] + 0.5)


def pbpi_loop2(lik: Any, acc: Any) -> None:
    """Accumulate partial likelihoods for one block."""
    if is_real(lik, acc):
        acc += np.log1p(np.abs(lik))


def pbpi_loop3(acc: Any, tree: Any) -> None:
    """MCMC proposal/acceptance: fold accumulators back into tree state."""
    if is_real(acc, tree):
        tree *= 0.99
        tree[: len(acc)] += 1e-3 * np.sign(acc.mean())


# ----------------------------------------------------------------------
# Flop counts (single source of truth for GFLOP/s reporting and the
# FlopsCostModel parameters)
# ----------------------------------------------------------------------
def gemm_flops(n: int, m: int | None = None, k: int | None = None) -> float:
    m = n if m is None else m
    k = n if k is None else k
    return 2.0 * n * m * k


def potrf_flops(n: int) -> float:
    return n**3 / 3.0


def trsm_flops(n: int) -> float:
    return float(n**3)


def syrk_flops(n: int) -> float:
    return float(n**3)


def cholesky_total_flops(nb: int, bs: int) -> float:
    """Total flops of a tiled Cholesky on an ``nb x nb`` grid of ``bs``
    blocks: (n^3)/3 + lower-order, computed exactly from the task mix."""
    total = 0.0
    for k in range(nb):
        total += potrf_flops(bs)
        total += (nb - k - 1) * trsm_flops(bs)
        total += (nb - k - 1) * syrk_flops(bs)
        total += ((nb - k - 1) * (nb - k - 2) // 2) * gemm_flops(bs)
    return total
