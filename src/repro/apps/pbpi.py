"""PBPI — parallel Bayesian phylogenetic inference (§V-B3).

"PBPI is a parallel implementation of a Bayesian phylogenetic inference
method for DNA sequence data ... based on the construction of
phylogenetic trees from DNA or AA sequences using a Markov chain Monte
Carlo (MCMC) sampling method ...  three different tasks are defined for
each of the three computational loops that account for the majority of
the execution time of the program.  The data set size used for this
application is 50000 elements (500 MB)."

We do not have the PBPI sources or its DNA datasets; per the
substitution rule (DESIGN.md §2) the application is rebuilt as a
synthetic MCMC skeleton that preserves exactly what the evaluation
exercises:

* per generation, **loop 1** evaluates conditional likelihoods per
  partition block (GPU version ~20x faster than SMP — compute bound),
* **loop 2** accumulates partial likelihoods per block (GPU only 3-4x
  faster — the paper: "the task itself is between three and four times
  slower for the SMP versions"),
* **loop 3** folds everything back into the MCMC tree state and has a
  *single SMP-targeted version*, which is what forces the likelihood
  data back to the host every generation and makes *pbpi-gpu* lose to
  *pbpi-smp* ("sending all the computational work of first and second
  loops to the GPU is not worth, since all the data will have to be
  transferred back and forth to run the third loop").

Results for PBPI are reported as execution time, not GFLOP/s (the
application "has no floating point operations" in the paper's counting).

Variants: ``smp`` / ``gpu`` / ``hyb`` as in §V-B3.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.apps import kernels
from repro.apps.base import Application
from repro.runtime.dataregion import DataRegion
from repro.runtime.directives import task, target
from repro.runtime.runtime import OmpSsRuntime
from repro.sim.perfmodel import AffineBytesCostModel
from repro.sim.topology import Machine

#: Effective streaming rates (bytes/s) calibrated so that the paper's
#: qualitative relations hold (loop1 GPU >> SMP; loop2 GPU ~3.5x SMP;
#: PCIe traffic expensive relative to loop2 compute).
LOOP1_SMP_BW = 1.0e9
LOOP1_GPU_BW = 10.0e9
LOOP2_SMP_BW = 2.0e9
LOOP2_GPU_BW = 7.0e9
LOOP3_SMP_BW = 12.0e9
GPU_LAUNCH_OVERHEAD = 10e-6

VERSION_LEGEND = {
    "pbpi_loop1_gpu": "GPU",
    "pbpi_loop1_smp": "SMP",
    "pbpi_loop2_gpu": "GPU",
    "pbpi_loop2_smp": "SMP",
}

#: Per-loop legends for the Figure 14/15 stacked charts.
PBPI_LOOP_LEGENDS = {
    "loop1": {"pbpi_loop1_gpu": "GPU", "pbpi_loop1_smp": "SMP"},
    "loop2": {"pbpi_loop2_gpu": "GPU", "pbpi_loop2_smp": "SMP"},
}


class PBPIApp(Application):
    """Synthetic PBPI: MCMC generations over partitioned likelihood loops."""

    name = "pbpi"
    VARIANTS = ("smp", "gpu", "hyb")

    def __init__(
        self,
        *,
        generations: int = 60,
        n_blocks: int = 16,
        dataset_bytes: int = 500 * 1024**2,
        tree_bytes: int = 8 * 1024**2,
        variant: str = "hyb",
        real: bool = False,
        seed: int = 0,
    ) -> None:
        if variant not in self.VARIANTS:
            raise ValueError(f"variant must be one of {self.VARIANTS}, got {variant!r}")
        if generations < 1 or n_blocks < 1:
            raise ValueError("generations and n_blocks must be positive")
        super().__init__(variant)
        self.generations = generations
        self.n_blocks = n_blocks
        self.dataset_bytes = dataset_bytes
        self.tree_bytes = tree_bytes
        self.block_bytes = dataset_bytes // n_blocks
        self.real = real
        self.seed = seed
        self._build_data()
        self._build_tasks()

    def submission_args(self) -> Optional[dict]:
        if self.real:
            return None
        return {
            "generations": self.generations,
            "n_blocks": self.n_blocks,
            "dataset_bytes": self.dataset_bytes,
            "tree_bytes": self.tree_bytes,
            "variant": self.variant,
            "seed": self.seed,
        }

    # ------------------------------------------------------------------
    def _build_data(self) -> None:
        nb = self.n_blocks
        if self.real:
            rng = np.random.default_rng(self.seed)
            elems = max(self.block_bytes // 8, 4)
            tree_elems = max(self.tree_bytes // 8, elems)
            self.seq = [rng.standard_normal(elems) for _ in range(nb)]
            self.lik = [np.zeros(elems) for _ in range(nb)]
            self.acc = [np.zeros(elems) for _ in range(nb)]
            self.tree = np.ones(tree_elems)
        else:
            self.seq = [
                DataRegion(("seq", b), self.block_bytes, label=f"seq[{b}]")
                for b in range(nb)
            ]
            self.lik = [
                DataRegion(("lik", b), self.block_bytes, label=f"lik[{b}]")
                for b in range(nb)
            ]
            self.acc = [
                DataRegion(("acc", b), self.block_bytes, label=f"acc[{b}]")
                for b in range(nb)
            ]
            self.tree = DataRegion("tree", self.tree_bytes, label="tree")

    def _build_tasks(self) -> None:
        # ---- loop 1: conditional likelihood per block -----------------
        l1_kwargs = dict(
            inputs=["seq", "tree"],
            outputs=["lik"],
            registry=self.registry,
        )
        if self.variant == "smp":
            self.loop1 = task(kernels.pbpi_loop1, device="smp",
                              name="pbpi_loop1_smp", **l1_kwargs)
        else:
            self.loop1 = task(kernels.pbpi_loop1, device="cuda",
                              name="pbpi_loop1_gpu", **l1_kwargs)
            if self.variant == "hyb":
                target(device="smp", implements=self.loop1)(
                    task(kernels.pbpi_loop1, name="pbpi_loop1_smp", **l1_kwargs)
                )

        # ---- loop 2: likelihood accumulation per block -----------------
        l2_kwargs = dict(inputs=["lik"], inouts=["acc"], registry=self.registry)
        if self.variant == "smp":
            self.loop2 = task(kernels.pbpi_loop2, device="smp",
                              name="pbpi_loop2_smp", **l2_kwargs)
        else:
            self.loop2 = task(kernels.pbpi_loop2, device="cuda",
                              name="pbpi_loop2_gpu", **l2_kwargs)
            if self.variant == "hyb":
                target(device="smp", implements=self.loop2)(
                    task(kernels.pbpi_loop2, name="pbpi_loop2_smp", **l2_kwargs)
                )

        # ---- loop 3: MCMC state update, SMP only -----------------------
        def loop3_body(liks, accs, tree):
            if kernels.is_real(tree, *liks, *accs):
                for lik, acc in zip(liks, accs, strict=True):
                    kernels.pbpi_loop3(acc, tree)
                    tree[: len(lik)] += 1e-6 * lik.mean()

        self.loop3 = task(
            loop3_body,
            inputs=lambda liks, accs, tree: [*liks, *accs],
            inouts=lambda liks, accs, tree: [tree],
            device="smp",
            name="pbpi_loop3_smp",
            registry=self.registry,
        )

    # ------------------------------------------------------------------
    def register_cost_models(self, machine: Machine) -> None:
        has_smp = bool(machine.devices_of_kind("smp"))
        has_gpu = bool(machine.devices_of_kind("cuda"))
        if self.variant != "smp" and has_gpu:
            machine.register_kernel_for_kind(
                "cuda", "pbpi_loop1_gpu",
                AffineBytesCostModel(GPU_LAUNCH_OVERHEAD, LOOP1_GPU_BW),
            )
            machine.register_kernel_for_kind(
                "cuda", "pbpi_loop2_gpu",
                AffineBytesCostModel(GPU_LAUNCH_OVERHEAD, LOOP2_GPU_BW),
            )
        if self.variant != "gpu" and has_smp:
            machine.register_kernel_for_kind(
                "smp", "pbpi_loop1_smp", AffineBytesCostModel(0.0, LOOP1_SMP_BW)
            )
            machine.register_kernel_for_kind(
                "smp", "pbpi_loop2_smp", AffineBytesCostModel(0.0, LOOP2_SMP_BW)
            )
        if not has_smp:
            raise RuntimeError("PBPI needs at least one SMP worker (loop 3 is SMP-only)")
        machine.register_kernel_for_kind(
            "smp", "pbpi_loop3_smp", AffineBytesCostModel(0.0, LOOP3_SMP_BW)
        )

    def master(self, rt: OmpSsRuntime) -> None:
        for _ in range(self.generations):
            for b in range(self.n_blocks):
                self.loop1(self.seq[b], self.tree, self.lik[b])
            for b in range(self.n_blocks):
                self.loop2(self.lik[b], self.acc[b])
            self.loop3(tuple(self.lik), tuple(self.acc), self.tree)

    def total_flops(self) -> Optional[float]:
        return None  # PBPI is reported as execution time (Figure 12)

    def task_count(self) -> int:
        return self.generations * (2 * self.n_blocks + 1)
