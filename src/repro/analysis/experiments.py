"""One driver per paper table/figure.

Each ``figN_*`` function runs the corresponding experiment on simulated
MinoTauro nodes and returns structured rows; the benches in
``benchmarks/`` print them, the integration tests assert the paper's
qualitative *shape* claims on them, and ``EXPERIMENTS.md`` records them.

All drivers take the sweep parameters explicitly so tests can shrink
them; defaults are sized to finish in seconds while keeping the paper's
problem structure (matmul keeps the full 16x16 tile grid = 4096 tasks;
Cholesky keeps the full 16x16 block grid = 816 tasks; PBPI keeps the
500 MB data set with a reduced generation count).
"""

from __future__ import annotations

from typing import Any, Optional, Sequence

from repro.analysis.metrics import (
    cluster_summary,
    transfer_breakdown_gb,
    version_percentages,
)
from repro.apps.cholesky import CholeskyApp
from repro.apps.cholesky import VERSION_LEGEND as CHOL_LEGEND
from repro.apps.matmul import MatmulApp
from repro.apps.matmul import VERSION_LEGEND as MM_LEGEND
from repro.apps.pbpi import PBPIApp
from repro.core.profile import VersionProfileTable
from repro.core.versioning import VersioningScheduler
from repro.resilience import FaultPlan, MessageFaultRule, NodeCrashRule
from repro.runtime.runtime import OmpSsRuntime
from repro.sim.topology import cluster_machine, minotauro_node

Row = dict[str, Any]

DEFAULT_SMP_COUNTS = (1, 2, 4, 8, 12)
DEFAULT_GPU_COUNTS = (1, 2)
DEFAULT_SEED = 1
DEFAULT_NOISE = 0.02

PBPI_LOOP1_LEGEND = {"pbpi_loop1_gpu": "GPU", "pbpi_loop1_smp": "SMP"}
PBPI_LOOP2_LEGEND = {"pbpi_loop2_gpu": "GPU", "pbpi_loop2_smp": "SMP"}


def _machine(smp: int, gpus: int, seed: int, noise: float):
    return minotauro_node(smp, gpus, noise_cv=noise, seed=seed)


# ----------------------------------------------------------------------
# Matrix multiplication (Figures 6, 7, 8)
# ----------------------------------------------------------------------
def fig6_matmul_performance(
    smp_counts: Sequence[int] = DEFAULT_SMP_COUNTS,
    gpu_counts: Sequence[int] = DEFAULT_GPU_COUNTS,
    *,
    n_tiles: int = 16,
    seed: int = DEFAULT_SEED,
    noise: float = DEFAULT_NOISE,
) -> list[Row]:
    """GFLOP/s of mm-gpu-aff / mm-gpu-dep / mm-hyb-ver (Figure 6)."""
    rows: list[Row] = []
    series = [("mm-gpu-aff", "gpu", "affinity"), ("mm-gpu-dep", "gpu", "dep"),
              ("mm-hyb-ver", "hyb", "versioning")]
    for gpus in gpu_counts:
        for smp in smp_counts:
            row: Row = {"smp": smp, "gpus": gpus}
            for label, variant, sched in series:
                app = MatmulApp(n_tiles=n_tiles, variant=variant)
                res = app.run(_machine(smp, gpus, seed, noise), sched)
                row[label] = res.gflops
            rows.append(row)
    return rows


def fig7_matmul_transfers(
    smp_counts: Sequence[int] = (1, 4, 8, 12),
    gpu_counts: Sequence[int] = DEFAULT_GPU_COUNTS,
    *,
    n_tiles: int = 16,
    seed: int = DEFAULT_SEED,
    noise: float = DEFAULT_NOISE,
) -> list[Row]:
    """Data transferred (GB) for GA / GD / HV configurations (Figure 7)."""
    rows: list[Row] = []
    series = [("GA", "gpu", "affinity"), ("GD", "gpu", "dep"), ("HV", "hyb", "versioning")]
    for gpus in gpu_counts:
        for smp in smp_counts:
            for label, variant, sched in series:
                app = MatmulApp(n_tiles=n_tiles, variant=variant)
                res = app.run(_machine(smp, gpus, seed, noise), sched)
                rows.append(
                    {"smp": smp, "gpus": gpus, "config": label,
                     **transfer_breakdown_gb(res.run)}
                )
    return rows


def fig8_matmul_task_stats(
    smp_counts: Sequence[int] = (1, 2, 4, 8, 12),
    gpu_counts: Sequence[int] = DEFAULT_GPU_COUNTS,
    *,
    n_tiles: int = 16,
    seed: int = DEFAULT_SEED,
    noise: float = DEFAULT_NOISE,
) -> list[Row]:
    """% of matmul task executions per version under versioning (Figure 8)."""
    rows: list[Row] = []
    for gpus in gpu_counts:
        for smp in smp_counts:
            app = MatmulApp(n_tiles=n_tiles, variant="hyb")
            res = app.run(_machine(smp, gpus, seed, noise), "versioning")
            shares = version_percentages(res.run, "matmul_tile_cublas", MM_LEGEND)
            rows.append({"smp": smp, "gpus": gpus,
                         **{k: shares.get(k, 0.0) for k in ("CUBLAS", "CUDA", "SMP")}})
    return rows


# ----------------------------------------------------------------------
# Cholesky factorization (Figures 9, 10, 11)
# ----------------------------------------------------------------------
def fig9_cholesky_performance(
    smp_counts: Sequence[int] = (2, 4, 8, 12),
    gpu_counts: Sequence[int] = (2,),
    *,
    n_blocks: int = 16,
    seed: int = DEFAULT_SEED,
    noise: float = DEFAULT_NOISE,
) -> list[Row]:
    """GFLOP/s of potrf-smp / potrf-gpu (aff, dep) / potrf-hyb-ver (Figure 9)."""
    rows: list[Row] = []
    series = [
        ("potrf-smp-dep", "smp", "dep"),
        ("potrf-gpu-aff", "gpu", "affinity"),
        ("potrf-gpu-dep", "gpu", "dep"),
        ("potrf-hyb-ver", "hyb", "versioning"),
    ]
    for gpus in gpu_counts:
        for smp in smp_counts:
            row: Row = {"smp": smp, "gpus": gpus}
            for label, variant, sched in series:
                app = CholeskyApp(n_blocks=n_blocks, variant=variant)
                res = app.run(_machine(smp, gpus, seed, noise), sched)
                row[label] = res.gflops
            rows.append(row)
    return rows


def fig10_cholesky_transfers(
    smp_counts: Sequence[int] = (2, 8),
    gpu_counts: Sequence[int] = (2,),
    *,
    n_blocks: int = 16,
    seed: int = DEFAULT_SEED,
    noise: float = DEFAULT_NOISE,
) -> list[Row]:
    """Data transferred (GB) per Cholesky configuration (Figure 10)."""
    rows: list[Row] = []
    series = [
        ("SMP-dep", "smp", "dep"),
        ("GPU-aff", "gpu", "affinity"),
        ("GPU-dep", "gpu", "dep"),
        ("HYB-ver", "hyb", "versioning"),
    ]
    for gpus in gpu_counts:
        for smp in smp_counts:
            for label, variant, sched in series:
                app = CholeskyApp(n_blocks=n_blocks, variant=variant)
                res = app.run(_machine(smp, gpus, seed, noise), sched)
                rows.append(
                    {"smp": smp, "gpus": gpus, "config": label,
                     **transfer_breakdown_gb(res.run)}
                )
    return rows


def fig11_cholesky_task_stats(
    smp_counts: Sequence[int] = (2, 4, 8, 12),
    gpu_counts: Sequence[int] = (2,),
    *,
    n_blocks: int = 16,
    seed: int = DEFAULT_SEED,
    noise: float = DEFAULT_NOISE,
) -> list[Row]:
    """% of potrf executions per version under versioning (Figure 11)."""
    rows: list[Row] = []
    for gpus in gpu_counts:
        for smp in smp_counts:
            app = CholeskyApp(n_blocks=n_blocks, variant="hyb")
            res = app.run(_machine(smp, gpus, seed, noise), "versioning")
            shares = version_percentages(res.run, "potrf_magma", CHOL_LEGEND)
            rows.append({"smp": smp, "gpus": gpus,
                         **{k: shares.get(k, 0.0) for k in ("GPU", "SMP")}})
    return rows


# ----------------------------------------------------------------------
# PBPI (Figures 12, 13, 14, 15)
# ----------------------------------------------------------------------
def fig12_pbpi_time(
    smp_counts: Sequence[int] = (2, 4, 8, 12),
    gpu_counts: Sequence[int] = (2,),
    *,
    generations: int = 30,
    seed: int = DEFAULT_SEED,
    noise: float = DEFAULT_NOISE,
) -> list[Row]:
    """PBPI execution time (s, lower is better) per variant (Figure 12)."""
    rows: list[Row] = []
    series = [("pbpi-smp", "smp", "dep"), ("pbpi-gpu", "gpu", "dep"),
              ("pbpi-hyb", "hyb", "versioning")]
    for gpus in gpu_counts:
        for smp in smp_counts:
            row: Row = {"smp": smp, "gpus": gpus}
            for label, variant, sched in series:
                app = PBPIApp(generations=generations, variant=variant)
                res = app.run(_machine(smp, gpus, seed, noise), sched)
                row[label] = res.makespan
            rows.append(row)
    return rows


def fig13_pbpi_transfers(
    smp_counts: Sequence[int] = (4, 8),
    gpu_counts: Sequence[int] = (2,),
    *,
    generations: int = 30,
    seed: int = DEFAULT_SEED,
    noise: float = DEFAULT_NOISE,
) -> list[Row]:
    """PBPI data transferred (GB) per variant (Figure 13)."""
    rows: list[Row] = []
    series = [("SMP-dep", "smp", "dep"), ("GPU-dep", "gpu", "dep"),
              ("HYB-ver", "hyb", "versioning")]
    for gpus in gpu_counts:
        for smp in smp_counts:
            for label, variant, sched in series:
                app = PBPIApp(generations=generations, variant=variant)
                res = app.run(_machine(smp, gpus, seed, noise), sched)
                rows.append(
                    {"smp": smp, "gpus": gpus, "config": label,
                     **transfer_breakdown_gb(res.run)}
                )
    return rows


def _pbpi_loop_stats(
    loop_task: str,
    legend: dict[str, str],
    smp_counts: Sequence[int],
    gpu_counts: Sequence[int],
    generations: int,
    seed: int,
    noise: float,
) -> list[Row]:
    rows: list[Row] = []
    for gpus in gpu_counts:
        for smp in smp_counts:
            app = PBPIApp(generations=generations, variant="hyb")
            res = app.run(_machine(smp, gpus, seed, noise), "versioning")
            shares = version_percentages(res.run, loop_task, legend)
            rows.append({"smp": smp, "gpus": gpus,
                         **{k: shares.get(k, 0.0) for k in ("GPU", "SMP")}})
    return rows


def fig14_pbpi_loop1_stats(
    smp_counts: Sequence[int] = (2, 4, 8, 12),
    gpu_counts: Sequence[int] = (2,),
    *,
    generations: int = 30,
    seed: int = DEFAULT_SEED,
    noise: float = DEFAULT_NOISE,
) -> list[Row]:
    """% of loop-1 executions per version under versioning (Figure 14)."""
    return _pbpi_loop_stats(
        "pbpi_loop1_gpu", PBPI_LOOP1_LEGEND, smp_counts, gpu_counts,
        generations, seed, noise,
    )


def fig15_pbpi_loop2_stats(
    smp_counts: Sequence[int] = (2, 4, 8, 12),
    gpu_counts: Sequence[int] = (2,),
    *,
    generations: int = 30,
    seed: int = DEFAULT_SEED,
    noise: float = DEFAULT_NOISE,
) -> list[Row]:
    """% of loop-2 executions per version under versioning (Figure 15)."""
    return _pbpi_loop_stats(
        "pbpi_loop2_gpu", PBPI_LOOP2_LEGEND, smp_counts, gpu_counts,
        generations, seed, noise,
    )


# ----------------------------------------------------------------------
# Cluster sharding (strong scaling)
# ----------------------------------------------------------------------
def cluster_strong_scaling(
    node_counts: Sequence[int] = (1, 2, 4, 8),
    *,
    n_tiles: int = 16,
    tile_size: int = 1024,
    smp_per_node: int = 2,
    gpus_per_node: int = 1,
    partition: str = "affinity",
    steal: bool = True,
    seed: int = DEFAULT_SEED,
    noise: float = DEFAULT_NOISE,
) -> list[Row]:
    """Tiled-matmul strong scaling: sharded cluster vs global versioning.

    One row per (node count, scheduler).  The global versioning
    scheduler sees the whole cluster as a flat worker pool, so every
    cold fetch funnels through node 0's NIC and performance flatlines;
    the sharded scheduler partitions the graph, notifies across shards
    and routes transfers node-to-node, so it keeps scaling.  Rows carry
    ``gflops``, mean/min node utilisation and the cross-shard message
    count so the benches can print the full picture.
    """
    rows: list[Row] = []
    for nodes in node_counts:
        machine_args = dict(
            smp_per_node=smp_per_node, gpus_per_node=gpus_per_node,
            noise_cv=noise, seed=seed,
        )
        for sched_label, sched, options in (
            ("sharded", "cluster", {"partition": partition, "steal": steal}),
            ("global", "versioning", None),
        ):
            machine = cluster_machine(nodes, **machine_args)
            app = MatmulApp(n_tiles=n_tiles, tile_size=tile_size, variant="hyb")
            res = app.run(machine, sched, scheduler_options=options)
            summary = cluster_summary(res.run)
            util = summary.get("node_utilisation", {})
            if not util and res.makespan > 0:
                # non-cluster schedulers know nothing about nodes; derive
                # the per-node view from the machine layout instead
                layout = machine.cluster_layout()
                per: dict[int, list[float]] = {}
                for w in res.run.workers:
                    node = layout.node_of_device.get(w.device.name, 0)
                    per.setdefault(node, []).append(w.busy_time)
                util = {
                    n: sum(bs) / (res.makespan * len(bs))
                    for n, bs in sorted(per.items())
                }
            rows.append({
                "nodes": nodes,
                "scheduler": sched_label,
                "gflops": res.gflops,
                "makespan": res.makespan,
                "cross_msgs": summary.get("notifications_sent", 0),
                "steals": summary.get("steals", 0),
                "pushes": summary.get("pushes", 0),
                "mean_node_util": (sum(util.values()) / len(util)) if util else 0.0,
                "min_node_util": min(util.values()) if util else 0.0,
                "tasks_per_node": summary.get("tasks_per_node", {}),
            })
    return rows


def cluster_chaos(
    loss_rates: Sequence[float] = (0.0, 0.02, 0.05),
    *,
    nodes: int = 4,
    n_tiles: int = 16,
    tile_size: int = 1024,
    smp_per_node: int = 2,
    gpus_per_node: int = 1,
    partition: str = "block",
    crash: bool = True,
    crash_frac: float = 0.4,
    rejoin: bool = False,
    protocol: Optional[dict] = None,
    seed: int = DEFAULT_SEED,
    noise: float = DEFAULT_NOISE,
) -> list[Row]:
    """Sharded-cluster matmul under an unreliable interconnect.

    One fault-free calibration run fixes the baseline makespan (and the
    mid-run crash instant, ``crash_frac`` of the way through it); then
    each loss rate runs with that fraction of cross-node notifications
    dropped in flight — once without and, with ``crash=True``, once with
    a whole-node crash layered on top.  Rows carry the slowdown relative
    to the fault-free run plus the protocol's book-keeping (retransmits,
    suppressed duplicates, recovered notifications, evacuated tasks), so
    the chaos bench and the acceptance tests can check the headline
    claim: reliable delivery holds the overhead to a bounded slowdown
    instead of a stall.
    """
    if nodes < 2:
        raise ValueError("cluster_chaos needs at least 2 nodes")
    machine_args = dict(
        smp_per_node=smp_per_node, gpus_per_node=gpus_per_node,
        noise_cv=noise, seed=seed,
    )
    sched_options: dict[str, Any] = {"partition": partition, "steal": True}
    if protocol is not None:
        # small calibration runs want an ack timeout proportionate to
        # their makespan; the default 50 ms suits full-scale sweeps
        sched_options["protocol"] = protocol

    def _run(plan):
        machine = cluster_machine(nodes, **machine_args)
        app = MatmulApp(n_tiles=n_tiles, tile_size=tile_size, variant="hyb")
        return app.run(
            machine, "cluster", scheduler_options=sched_options, fault_plan=plan
        )

    baseline = _run(None)
    base_mk = baseline.makespan
    crash_at = crash_frac * base_mk
    crash_rule = NodeCrashRule(
        node=nodes - 1,
        at_time=crash_at,
        rejoin_after=(0.25 * base_mk if rejoin else None),
    )

    def _row(loss: float, crashed: bool, res) -> Row:
        summary = cluster_summary(res.run)
        r = res.run.resilience
        return {
            "loss": loss,
            "crash": crashed,
            "makespan": res.makespan,
            "slowdown": res.makespan / base_mk if base_mk > 0 else 1.0,
            "gflops": res.gflops,
            "dropped": r.messages_dropped,
            "retransmits": summary.get("retransmits", 0),
            "dup_suppressed": summary.get("dup_suppressed", 0),
            "recovered": summary.get("notifications_recovered", 0),
            "evacuated": summary.get("evacuated_tasks", 0),
            "recomputed": r.recompute_tasks,
        }

    rows: list[Row] = [_row(0.0, False, baseline)]
    for loss in loss_rates:
        msg_rules = (
            (MessageFaultRule(drop=loss),) if loss > 0 else ()
        )
        if loss > 0:
            rows.append(_row(loss, False, _run(
                FaultPlan(seed=seed, message_faults=msg_rules)
            )))
        if crash:
            rows.append(_row(loss, True, _run(
                FaultPlan(
                    seed=seed,
                    message_faults=msg_rules,
                    node_crashes=(crash_rule,),
                )
            )))
    return rows


# ----------------------------------------------------------------------
# Table I and Figure 5
# ----------------------------------------------------------------------
def table1_taskversionset(
    *,
    seed: int = DEFAULT_SEED,
    noise: float = DEFAULT_NOISE,
) -> tuple[VersionProfileTable, str]:
    """Populate and render a TaskVersionSet table shaped like Table I.

    Runs a small hybrid matmul with two different tile sizes (two
    data-set-size groups for ``task1``) plus a single-size Cholesky
    (``task2``-style single group) under the versioning scheduler, then
    renders the scheduler's live table.
    """
    machine = _machine(4, 2, seed, noise)
    sched = VersioningScheduler()
    app = MatmulApp(n_tiles=4, tile_size=512, variant="hyb")
    app.register_cost_models(machine)
    app2 = MatmulApp(n_tiles=2, tile_size=1024, variant="hyb")
    app2.register_cost_models(machine)
    rt = OmpSsRuntime(machine, sched)
    with rt:
        app.master(rt)
        rt.taskwait()
        app2.master(rt)
    rt.result()
    return sched.table, sched.table.render()


def fig5_earliest_executor_decision(
    *,
    seed: int = DEFAULT_SEED,
) -> Row:
    """Reproduce the Figure 5 scenario as a concrete scheduling decision.

    A two-version task (fast GPU / slow SMP) runs long enough to fill
    the GPU queues; the row reports how many tasks the (slower but idle)
    SMP workers picked up — non-zero means the earliest-executor rule
    preferred an idle slow worker over the busy fastest executor.
    """
    machine = _machine(2, 1, seed, 0.0)
    app = MatmulApp(n_tiles=8, variant="hyb")
    res = app.run(machine, "versioning")
    counts = res.run.version_counts["matmul_tile_cublas"]
    smp_runs = counts.get("matmul_tile_cblas", 0)
    gpu_runs = counts.get("matmul_tile_cublas", 0) + counts.get("matmul_tile_cuda", 0)
    return {
        "smp_runs": smp_runs,
        "gpu_runs": gpu_runs,
        "makespan": res.makespan,
        "gflops": res.gflops,
    }
