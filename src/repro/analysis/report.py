"""Plain-text rendering of experiment results.

The benches print their figures as aligned tables and ASCII bar charts
so a terminal run visually parallels the paper's plots.
"""

from __future__ import annotations

from typing import Any, Mapping, Optional, Sequence


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[Any]],
    *,
    title: str = "",
    floatfmt: str = "{:.1f}",
) -> str:
    """Render an aligned monospace table."""
    def cell(v: Any) -> str:
        if isinstance(v, float):
            return floatfmt.format(v)
        return str(v)

    str_rows = [[cell(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but table has {len(headers)} columns"
            )
        for i, v in enumerate(row):
            widths[i] = max(widths[i], len(v))

    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths, strict=True)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(v.rjust(w) for v, w in zip(row, widths, strict=True)))
    return "\n".join(lines)


def bar_chart(
    data: Mapping[str, float],
    *,
    title: str = "",
    width: int = 50,
    unit: str = "",
    max_value: Optional[float] = None,
) -> str:
    """Horizontal ASCII bar chart, one bar per key."""
    if not data:
        return "(no data)"
    peak = max_value if max_value is not None else max(data.values())
    peak = max(peak, 1e-12)
    label_w = max(len(k) for k in data)
    lines = []
    if title:
        lines.append(title)
    for key, value in data.items():
        n = int(round(value / peak * width))
        n = min(max(n, 0), width)
        lines.append(f"{key:<{label_w}} |{'█' * n}{' ' * (width - n)}| {value:.2f}{unit}")
    return "\n".join(lines)


def stacked_percentages(
    series: Mapping[str, Mapping[str, float]],
    *,
    title: str = "",
    width: int = 50,
    order: Optional[Sequence[str]] = None,
) -> str:
    """Render per-row 100%-stacked bars (the Figure 8/11/14/15 style).

    ``series`` maps a row label (e.g. "4smp+2gpu") to {category: %}.
    Each category gets a distinct fill character.
    """
    fills = "█▓▒░▞▚"
    cats: list[str] = list(order) if order else []
    for shares in series.values():
        for c in shares:
            if c not in cats:
                cats.append(c)
    legend = "  ".join(f"{fills[i % len(fills)]}={c}" for i, c in enumerate(cats))
    label_w = max((len(k) for k in series), default=0)
    lines = []
    if title:
        lines.append(title)
    lines.append(f"{'':<{label_w}}  {legend}")
    for key, shares in series.items():
        bar = ""
        for i, c in enumerate(cats):
            n = int(round(shares.get(c, 0.0) / 100.0 * width))
            bar += fills[i % len(fills)] * n
        bar = (bar + " " * width)[:width]
        pct = " ".join(f"{c}:{shares.get(c, 0.0):.1f}%" for c in cats if shares.get(c))
        lines.append(f"{key:<{label_w}} |{bar}| {pct}")
    return "\n".join(lines)
