"""Trace export and post-mortem analysis.

Nanos++ instruments runs for Paraver; the equivalent here: export a
:class:`~repro.sim.trace.Trace` to CSV or JSON for external tooling, and
compute the summary statistics people open Paraver for — per-worker
utilisation timelines, transfer/compute overlap and critical-worker
identification.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Union

import numpy as np

from repro.sim.trace import Trace

PathLike = Union[str, Path]

_FIELDS = ("start", "end", "worker", "category", "label")


def trace_to_csv(trace: Trace, path: PathLike) -> None:
    """Write one row per trace record (start, end, worker, category, label)."""
    with open(path, "w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(_FIELDS)
        for rec in trace:
            writer.writerow([repr(rec.start), repr(rec.end), rec.worker,
                             rec.category, rec.label])


def trace_from_csv(path: PathLike) -> Trace:
    """Load a trace written by :func:`trace_to_csv` (meta is not kept)."""
    trace = Trace()
    with open(path, newline="") as fh:
        reader = csv.DictReader(fh)
        if reader.fieldnames is None or tuple(reader.fieldnames) != _FIELDS:
            raise ValueError(f"not a trace CSV: header {reader.fieldnames}")
        for row in reader:
            trace.add(float(row["start"]), float(row["end"]), row["worker"],
                      row["category"], row["label"])
    return trace


def trace_to_json(trace: Trace, path: PathLike) -> None:
    payload = [
        {"start": r.start, "end": r.end, "worker": r.worker,
         "category": r.category, "label": r.label}
        for r in trace
    ]
    Path(path).write_text(json.dumps(payload, indent=1))


def trace_from_json(path: PathLike) -> Trace:
    trace = Trace()
    for row in json.loads(Path(path).read_text()):
        trace.add(row["start"], row["end"], row["worker"], row["category"],
                  row["label"])
    return trace


# ----------------------------------------------------------------------
# Post-mortem statistics
# ----------------------------------------------------------------------
def utilisation_timeline(
    trace: Trace, bins: int = 100, category: str = "task"
) -> dict[str, np.ndarray]:
    """Per-worker busy fraction over ``bins`` equal time slices.

    Returns ``{worker: array of length bins}`` with values in [0, 1].
    """
    if bins < 1:
        raise ValueError("bins must be >= 1")
    span = trace.makespan()
    out: dict[str, np.ndarray] = {}
    if span <= 0:
        return out
    edges = np.linspace(0.0, span, bins + 1)
    width = span / bins
    for rec in trace:
        if rec.category != category:
            continue
        row = out.setdefault(rec.worker, np.zeros(bins))
        lo = np.searchsorted(edges, rec.start, side="right") - 1
        hi = np.searchsorted(edges, rec.end, side="left")
        for b in range(max(lo, 0), min(hi, bins)):
            overlap = min(rec.end, edges[b + 1]) - max(rec.start, edges[b])
            if overlap > 0:
                row[b] += overlap / width
    for row in out.values():
        np.clip(row, 0.0, 1.0, out=row)
    return out


def overlap_fraction(trace: Trace) -> float:
    """Fraction of total transfer time hidden under task execution.

    1.0 means every transferred second coincided with some task running
    somewhere; 0.0 means all transfers happened while all workers idled.
    """
    tasks = sorted(
        ((r.start, r.end) for r in trace.by_category("task")), key=lambda iv: iv[0]
    )
    merged: list[list[float]] = []
    for s, e in tasks:
        if merged and s <= merged[-1][1]:
            merged[-1][1] = max(merged[-1][1], e)
        else:
            merged.append([s, e])
    total = 0.0
    hidden = 0.0
    for rec in trace.by_category("transfer"):
        total += rec.duration
        for s, e in merged:
            lo, hi = max(s, rec.start), min(e, rec.end)
            if hi > lo:
                hidden += hi - lo
    if total == 0.0:
        return 1.0
    return hidden / total


def critical_worker(trace: Trace) -> str:
    """The worker with the largest busy time — the throughput bottleneck."""
    workers = trace.workers()
    if not workers:
        raise ValueError("empty trace")
    return max(workers, key=lambda w: (trace.busy_time(w, category=None), w))
