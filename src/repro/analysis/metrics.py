"""Derived metrics over finished runs."""

from __future__ import annotations

from typing import Mapping, Optional

from repro.runtime.runtime import RunResult

GB = 1024**3


def version_percentages(
    result: RunResult, task_name: str, legend: Optional[Mapping[str, str]] = None
) -> dict[str, float]:
    """Share (%) of executions per version of ``task_name``.

    ``legend`` optionally maps version names to display labels (e.g.
    ``{"matmul_tile_cublas": "CUBLAS"}``); shares of versions mapping to
    the same label are summed.  This is the quantity plotted in the
    paper's Figures 8, 11, 14 and 15.
    """
    fractions = result.version_fractions(task_name)
    out: dict[str, float] = {}
    for version, frac in fractions.items():
        label = legend.get(version, version) if legend else version
        out[label] = out.get(label, 0.0) + frac * 100.0
    return out


def transfer_breakdown_gb(result: RunResult) -> dict[str, float]:
    """Input/Output/Device Tx in GB — the paper's Figures 7, 10, 13."""
    tx = result.transfer_stats
    return {
        "input_tx": tx.input_tx / GB,
        "output_tx": tx.output_tx / GB,
        "device_tx": tx.device_tx / GB,
        "total": tx.total_bytes / GB,
    }


def worker_utilisation(result: RunResult) -> dict[str, float]:
    """Busy fraction per worker over the makespan."""
    return {
        name: stats["utilisation"] for name, stats in sorted(result.worker_stats.items())
    }


def time_to_reliable_phase(result: RunResult) -> Optional[float]:
    """Simulated time at which the last size group left the learning
    phase — the warm-start figure of merit.

    ``None`` when the run did not use a versioning scheduler or no group
    ever graduated (run too short, or aborted mid-learning).  Groups that
    were *born* reliable (fully preloaded under the ``trust`` policy)
    graduate at their first dispatch, so a perfectly warm-started run
    reports a value close to 0.
    """
    sched = result.scheduler_state
    getter = getattr(sched, "time_to_reliable_phase", None)
    if getter is None:
        return None
    return getter()


def warm_start_summary(result: RunResult) -> dict[str, float]:
    """Warm-start effectiveness counters of one run.

    ``learning_dispatches`` / ``reliable_dispatches`` split the paper's
    two scheduling phases; ``preloaded_entries`` counts (group, version)
    profiles seeded from a store; ``time_to_reliable`` is
    :func:`time_to_reliable_phase` (``inf`` when never reached, so cold
    and warm runs compare monotonically).
    """
    sched = result.scheduler_state
    ttr = time_to_reliable_phase(result)
    return {
        "learning_dispatches": float(getattr(sched, "learning_dispatches", 0)),
        "reliable_dispatches": float(getattr(sched, "reliable_dispatches", 0)),
        "preloaded_entries": float(getattr(sched, "preloaded_entries", 0)),
        "time_to_reliable": float("inf") if ttr is None else ttr,
    }


def straggler_summary(result: RunResult) -> dict[str, float]:
    """Straggler-robustness counters of one run.

    ``detected`` counts adaptive-deadline expiries; ``launched`` /
    ``won`` / ``wasted`` split the speculative copies into races the
    copy won and races the original won anyway (wasted work);
    ``speculation_yield`` is won/launched (1.0 on a run with no
    speculation, so fault-free runs score perfect); ``hangs`` counts
    injected never-terminating executions the watchdog had to resolve.
    """
    res = result.resilience
    detected = float(getattr(res, "straggler_detected", 0))
    launched = float(getattr(res, "speculations_launched", 0))
    won = float(getattr(res, "speculations_won", 0))
    wasted = float(getattr(res, "speculations_wasted", 0))
    return {
        "detected": detected,
        "launched": launched,
        "won": won,
        "wasted": wasted,
        "speculation_yield": won / launched if launched else 1.0,
        "hangs": float(getattr(res, "hangs", 0)),
    }


def node_utilisation(result: RunResult) -> dict[int, float]:
    """Busy fraction per cluster node over the makespan.

    Empty when the run did not use the sharded cluster scheduler (the
    only scheduler that knows the node → worker mapping).
    """
    sched = result.scheduler_state
    getter = getattr(sched, "node_utilisation", None)
    if getter is None:
        return {}
    return getter(result.makespan)


def cluster_summary(result: RunResult) -> dict:
    """Sharded-cluster counters of one run, flat for tabulation.

    Keys: ``n_nodes``, ``local_edges``, ``cross_edges``,
    ``notifications_sent``/``_delivered``, ``pushes``, ``push_bytes``,
    ``steals``, ``tasks_per_node``, plus ``node_utilisation`` and the
    derived ``cross_edge_fraction`` and ``load_imbalance`` (max/mean
    tasks per node; 1.0 is perfect).  Empty dict for non-cluster runs.
    """
    sched = result.scheduler_state
    stats = getattr(sched, "stats", None)
    if stats is None or not hasattr(stats, "as_dict"):
        return {}
    out = stats.as_dict()
    edges = out["local_edges"] + out["cross_edges"]
    out["cross_edge_fraction"] = out["cross_edges"] / edges if edges else 0.0
    per_node = out["tasks_per_node"]
    if per_node:
        mean = sum(per_node.values()) / len(per_node)
        out["load_imbalance"] = max(per_node.values()) / mean if mean else 1.0
    else:
        out["load_imbalance"] = 1.0
    out["node_utilisation"] = node_utilisation(result)
    return out


def tasks_per_device_kind(result: RunResult) -> dict[str, int]:
    """Executed-task counts aggregated by device kind prefix.

    Worker names are ``w:<device>``; device names are ``smp<i>`` /
    ``gpu<i>``, so the kind is the alphabetic prefix.
    """
    out: dict[str, int] = {}
    for name, stats in result.worker_stats.items():
        device = name.split(":", 1)[1]
        kind = device.rstrip("0123456789")
        out[kind] = out.get(kind, 0) + int(stats["tasks_run"])
    return out
