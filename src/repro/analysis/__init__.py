"""Analysis & reporting: metrics, experiment drivers, table rendering.

* :mod:`repro.analysis.metrics` — derived metrics from
  :class:`~repro.runtime.runtime.RunResult` (version splits, transfer
  breakdowns, utilisation),
* :mod:`repro.analysis.experiments` — one driver per paper table/figure;
  each returns structured rows that the benches print and the tests
  assert shape properties on,
* :mod:`repro.analysis.report` — plain-text tables and bar charts, so
  the benches' output visually parallels the paper's figures.
"""

from repro.analysis.metrics import (
    straggler_summary,
    time_to_reliable_phase,
    transfer_breakdown_gb,
    version_percentages,
    warm_start_summary,
    worker_utilisation,
)
from repro.analysis.report import bar_chart, format_table
from repro.analysis.traceexport import (
    critical_worker,
    overlap_fraction,
    trace_from_csv,
    trace_from_json,
    trace_to_csv,
    trace_to_json,
    utilisation_timeline,
)
from repro.analysis import experiments

__all__ = [
    "straggler_summary",
    "time_to_reliable_phase",
    "transfer_breakdown_gb",
    "version_percentages",
    "warm_start_summary",
    "worker_utilisation",
    "bar_chart",
    "format_table",
    "trace_to_csv",
    "trace_from_csv",
    "trace_to_json",
    "trace_from_json",
    "utilisation_timeline",
    "overlap_fraction",
    "critical_worker",
    "experiments",
]
