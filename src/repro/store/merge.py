"""Cross-run profile merging with #Exec weighting and staleness decay.

The merge rule for one (task, size-group, version) entry across several
payloads follows the estimator semantics: each contribution is a mean
over a number of executions, so the combined mean is the
execution-weighted average.  The weight of an entry is its *effective*
execution count::

    effective = executions * decay ** stale_runs

where ``stale_runs`` counts how many completed runs have been merged
into the store since the entry was last refreshed.  Fresh data therefore
dominates and stale data fades geometrically instead of pinning the
estimate forever — the "always learning" property (§IV-B) extended
across process lifetimes.

Payloads with differing device-calibration fingerprints are never
silently combined: learned times from different hardware are not
comparable (:class:`FingerprintMismatchError`), unless the caller
explicitly opts out of the check.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

from repro.store.format import (
    FingerprintMismatchError,
    StoreError,
    empty_payload,
    validate_payload,
)

#: Default per-run geometric decay of unrefreshed entries.
DEFAULT_DECAY = 0.5

#: Entries whose effective execution count falls below this are dropped.
MIN_EFFECTIVE_EXECUTIONS = 0.5

#: Merged execution counts are capped so decades of history cannot make
#: an estimate immune to new evidence (≈ a few learning phases' worth).
MAX_MERGED_EXECUTIONS = 1000


def effective_executions(entry: dict, decay: float = DEFAULT_DECAY) -> float:
    """The staleness-decayed weight of one version entry."""
    return entry["executions"] * decay ** entry.get("stale_runs", 0)


def age_payload(payload: dict, by: int = 1) -> dict:
    """Return a copy with every entry's ``stale_runs`` advanced by ``by``
    (one unit per completed run merged since the entry was refreshed)."""
    out = _copy_shell(payload)
    for task_name, groups in payload.get("tasks", {}).items():
        out["tasks"][task_name] = [
            {
                "representative_bytes": g["representative_bytes"],
                "versions": {
                    v: {**stats, "stale_runs": stats.get("stale_runs", 0) + by}
                    for v, stats in g.get("versions", {}).items()
                },
            }
            for g in groups
        ]
    return out


def merge_payloads(
    payloads: Sequence[dict],
    *,
    decay: float = DEFAULT_DECAY,
    check_fingerprints: bool = True,
) -> dict:
    """Merge several store payloads into one.

    Entries are matched by (task, representative_bytes, version);
    matching entries combine by effective-execution-weighted mean, and
    the result's ``stale_runs`` is the minimum of the contributors' (the
    freshest provenance wins).  Variances pool by the law of total
    variance (within- plus between-contributor spread).  Sub-threshold
    entries are dropped.
    """
    if not payloads:
        raise StoreError("nothing to merge: no payloads given")
    if not 0.0 < decay <= 1.0:
        raise StoreError(f"decay must be in (0, 1], got {decay}")
    for p in payloads:
        validate_payload(p)
    fingerprint = _common_fingerprint(payloads, check=check_fingerprints)

    out = empty_payload(
        fingerprint=fingerprint,
        grouping=str(payloads[0].get("grouping", "exact")),
        estimator=str(payloads[0].get("estimator", "mean")),
    )
    out["meta"]["runs"] = sum(p["meta"].get("runs", 0) for p in payloads)
    out["meta"]["checkpoints"] = max(p["meta"].get("checkpoints", 0) for p in payloads)
    out["meta"]["invalidations"] = sum(
        p["meta"].get("invalidations", 0) for p in payloads
    )

    # (task, representative_bytes) -> version -> list of entries
    buckets: dict[tuple[str, int], dict[str, list[dict]]] = {}
    for p in payloads:
        for task_name, groups in p.get("tasks", {}).items():
            for g in groups:
                key = (task_name, int(g["representative_bytes"]))
                by_version = buckets.setdefault(key, {})
                for vname, stats in g.get("versions", {}).items():
                    by_version.setdefault(vname, []).append(stats)

    for (task_name, rep_bytes), by_version in sorted(buckets.items()):
        versions: dict[str, dict] = {}
        for vname, entries in sorted(by_version.items()):
            merged = _merge_entries(entries, decay)
            if merged is not None:
                versions[vname] = merged
        out["tasks"].setdefault(task_name, []).append(
            {"representative_bytes": rep_bytes, "versions": versions}
        )
    return validate_payload(out)


def prune_payload(
    payload: dict,
    *,
    decay: float = DEFAULT_DECAY,
    max_stale: Optional[int] = None,
    min_executions: int = 1,
) -> tuple[dict, int]:
    """Drop entries that are too stale or too thin to trust.

    Removes version entries with ``stale_runs > max_stale`` (when
    given), raw executions below ``min_executions``, or an effective
    count below :data:`MIN_EFFECTIVE_EXECUTIONS`; then drops emptied
    groups and tasks.  Returns ``(pruned payload, entries removed)``.
    """
    validate_payload(payload)
    out = _copy_shell(payload)
    removed = 0
    for task_name, groups in payload.get("tasks", {}).items():
        kept_groups = []
        for g in groups:
            versions = {}
            for vname, stats in g.get("versions", {}).items():
                too_stale = max_stale is not None and stats.get("stale_runs", 0) > max_stale
                too_thin = (
                    stats["executions"] < min_executions
                    or effective_executions(stats, decay) < MIN_EFFECTIVE_EXECUTIONS
                )
                if too_stale or too_thin:
                    removed += 1
                    continue
                versions[vname] = dict(stats)
            if versions:
                kept_groups.append(
                    {
                        "representative_bytes": g["representative_bytes"],
                        "versions": versions,
                    }
                )
        if kept_groups:
            out["tasks"][task_name] = kept_groups
    return out, removed


def to_hints(payload: dict, *, decay: float = DEFAULT_DECAY) -> dict:
    """Flatten a payload to the legacy hints-snapshot shape consumed by
    ``VersioningScheduler(hints=...)`` / ``VersionProfileTable.preload``.

    Staleness decay is applied here: an entry enters the new run with
    ``round(executions * decay**stale_runs)`` executions of credit, and
    entries decayed to nothing are omitted.  Pass ``decay=1.0`` to
    export raw counts.
    """
    validate_payload(payload)
    out: dict = {
        "grouping": payload.get("grouping", "exact"),
        "estimator": payload.get("estimator", "mean"),
        "tasks": {},
    }
    for task_name, groups in payload.get("tasks", {}).items():
        out_groups = []
        for g in groups:
            versions = {}
            for vname, stats in g.get("versions", {}).items():
                eff = int(round(effective_executions(stats, decay)))
                if eff < 1:
                    continue
                entry = {
                    "mean_time": stats["mean_time"],
                    "executions": eff,
                }
                if stats.get("variance") is not None:
                    entry["variance"] = stats["variance"]
                versions[vname] = entry
            if versions:
                out_groups.append(
                    {
                        "representative_bytes": g["representative_bytes"],
                        "versions": versions,
                    }
                )
        if out_groups:
            out["tasks"][task_name] = out_groups
    return out


def entry_count(payload: dict) -> int:
    """Total (task, group, version) entries in a payload."""
    return sum(
        len(g.get("versions", {}))
        for groups in payload.get("tasks", {}).values()
        for g in groups
    )


# ----------------------------------------------------------------------
def _merge_entries(entries: Iterable[dict], decay: float) -> Optional[dict]:
    weight = 0.0
    weighted_mean = 0.0
    weighted_second_moment = 0.0  # Σ wᵢ (varᵢ + meanᵢ²)
    any_variance = False
    stale = None
    for e in entries:
        w = effective_executions(e, decay)
        if w <= 0.0:
            continue
        weight += w
        weighted_mean += w * e["mean_time"]
        var = e.get("variance")
        if var is not None:
            any_variance = True
        weighted_second_moment += w * (
            (var if var is not None else 0.0) + e["mean_time"] ** 2
        )
        s = e.get("stale_runs", 0)
        stale = s if stale is None else min(stale, s)
    if weight < MIN_EFFECTIVE_EXECUTIONS or stale is None:
        return None
    mean = weighted_mean / weight
    out = {
        "mean_time": mean,
        "executions": min(max(1, int(round(weight))), MAX_MERGED_EXECUTIONS),
        "stale_runs": stale,
    }
    if any_variance:
        # law of total variance over the contributing populations;
        # the clamp absorbs floating-point cancellation near zero
        out["variance"] = max(0.0, weighted_second_moment / weight - mean ** 2)
    return out


def _common_fingerprint(payloads: Sequence[dict], *, check: bool) -> Optional[str]:
    fingerprints = {p.get("fingerprint") for p in payloads} - {None}
    if len(fingerprints) > 1 and check:
        raise FingerprintMismatchError(
            "refusing to merge stores with different device calibrations: "
            + ", ".join(sorted(fingerprints))
        )
    if len(fingerprints) == 1:
        return next(iter(fingerprints))
    return None


def _copy_shell(payload: dict) -> dict:
    """A payload copy with the same metadata but empty ``tasks``."""
    out = empty_payload(
        fingerprint=payload.get("fingerprint"),
        grouping=str(payload.get("grouping", "exact")),
        estimator=str(payload.get("estimator", "mean")),
    )
    out["meta"] = dict(payload.get("meta", out["meta"]))
    return out
