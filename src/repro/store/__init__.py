"""Durable profile store: checkpointed learning tables across runs.

The versioning scheduler's profile tables (§IV-B, Table I) are learned
per process and die with it.  This package makes them durable:

* :mod:`repro.store.format` — schema-versioned on-disk JSON format with
  atomic writes, rotation to ``.bak``, validation and transparent
  migration from legacy §VII hints snapshots (XML or JSON),
* :mod:`repro.store.merge` — cross-run merging weighted by #Exec with
  staleness decay, plus pruning and hints export,
* :mod:`repro.store.store` — :class:`ProfileStore`, the run-lifecycle
  API (begin/checkpoint/commit/absorb) with device-calibration
  fingerprint invalidation,
* :mod:`repro.store.checkpoint` — :class:`Checkpointer`, periodic
  in-run checkpoints riding the simulation event loop so an aborted run
  can warm-start its successor,
* ``python -m repro.store`` — inspect / diff / merge / prune / migrate
  CLI over store files.
"""

from repro.store.checkpoint import DEFAULT_IDLE_LIMIT, DEFAULT_INTERVAL, Checkpointer
from repro.store.format import (
    FORMAT_NAME,
    SCHEMA_VERSION,
    FingerprintMismatchError,
    StoreCorruptError,
    StoreError,
    backup_path,
    empty_payload,
    migrate_legacy,
    read_payload,
    validate_payload,
    write_payload,
)
from repro.store.merge import (
    DEFAULT_DECAY,
    age_payload,
    effective_executions,
    entry_count,
    merge_payloads,
    prune_payload,
    to_hints,
)
from repro.store.store import (
    ProfileStore,
    StoreLockTimeoutError,
    warm_start_options,
)

__all__ = [
    "Checkpointer",
    "DEFAULT_DECAY",
    "DEFAULT_IDLE_LIMIT",
    "DEFAULT_INTERVAL",
    "FORMAT_NAME",
    "FingerprintMismatchError",
    "ProfileStore",
    "SCHEMA_VERSION",
    "StoreCorruptError",
    "StoreError",
    "StoreLockTimeoutError",
    "age_payload",
    "backup_path",
    "effective_executions",
    "empty_payload",
    "entry_count",
    "merge_payloads",
    "migrate_legacy",
    "prune_payload",
    "read_payload",
    "to_hints",
    "validate_payload",
    "warm_start_options",
    "write_payload",
]
