"""Periodic in-run checkpointing of the scheduler's learning tables.

A :class:`Checkpointer` rides the simulation's own event loop: bound to
a runtime, it registers a recurring event that snapshots the versioning
scheduler's profile table into a :class:`~repro.store.store.ProfileStore`
every ``interval`` simulated seconds.  A run killed mid-learning (task
retry budget exhausted, worker loss cascade, plain crash) therefore
leaves a consistent store generation on disk from which the next run can
warm-start instead of re-learning from scratch.

Two subtleties:

* **Double counting.**  If the scheduler was itself warm-started from
  the same store, its estimator counts already contain the preloaded
  history, so checkpoints must *not* merge the pre-run baseline back in.
  This is auto-detected from ``scheduler.preloaded_entries``.
* **Liveness.**  A recurring event keeps the queue non-empty, which
  would turn the runtime's empty-queue deadlock detection into an
  infinite loop.  The checkpointer therefore watches the runtime's
  completed-task counter and retires itself after ``idle_limit``
  consecutive ticks with no forward progress.

The cadence is adaptive: checkpoints matter most while the tables are
still being learned (that is the state an aborted run cannot cheaply
rebuild), so once every size group the scheduler has dispatched reaches
the reliable phase, the interval widens by ``widen_factor``; if a new
group later enters learning (a new problem size mid-run) it tightens
back to the base interval.  ``interval_history`` records every
transition as ``(sim_time, interval)``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.sim.engine import EventKind, RecurringEvent
from repro.store.store import ProfileStore

if TYPE_CHECKING:  # pragma: no cover
    from repro.runtime.runtime import OmpSsRuntime

#: Default checkpoint cadence in simulated seconds.
DEFAULT_INTERVAL = 0.25

#: Consecutive no-progress ticks after which the checkpointer retires.
DEFAULT_IDLE_LIMIT = 3


class Checkpointer:
    """Periodic profile-table checkpoints driven by simulated time."""

    def __init__(
        self,
        store: ProfileStore,
        *,
        interval: float = DEFAULT_INTERVAL,
        merge_base: Optional[bool] = None,
        idle_limit: int = DEFAULT_IDLE_LIMIT,
        widen_factor: float = 4.0,
    ) -> None:
        if interval <= 0:
            raise ValueError(f"checkpoint interval must be positive, got {interval}")
        if idle_limit < 1:
            raise ValueError(f"idle_limit must be >= 1, got {idle_limit}")
        if widen_factor < 1:
            raise ValueError(f"widen_factor must be >= 1, got {widen_factor}")
        self.store = store
        self.base_interval = interval
        self.interval = interval
        self.widen_factor = widen_factor
        #: every cadence change as (sim_time, new interval)
        self.interval_history: list[tuple[float, float]] = []
        self.idle_limit = idle_limit
        #: None = decide at bind time from the scheduler's warm-start state.
        self._merge_base_override = merge_base
        self.merge_base = True
        self.checkpoints_taken = 0
        self.last_checkpoint_time: Optional[float] = None
        self._rt: Optional["OmpSsRuntime"] = None
        self._event: Optional[RecurringEvent] = None
        self._last_completed = 0
        self._idle_ticks = 0
        self._finalized = False

    # ------------------------------------------------------------------
    def bind(self, runtime: "OmpSsRuntime") -> "Checkpointer":
        """Attach to a runtime: open the run in the store and start the
        recurring checkpoint event.  Call before submitting tasks."""
        scheduler = runtime.scheduler
        if getattr(scheduler, "table", None) is None:
            raise TypeError(
                f"scheduler {scheduler.name!r} has no profile table to checkpoint; "
                "the profile store requires a versioning scheduler"
            )
        from repro.sim.calibrate import machine_fingerprint

        self._rt = runtime
        if self._merge_base_override is not None:
            self.merge_base = self._merge_base_override
        else:
            # a warm-started scheduler's counts already include the
            # store's history; merging the baseline would double-count
            self.merge_base = getattr(scheduler, "preloaded_entries", 0) == 0
        self.store.begin_run(fingerprint=machine_fingerprint(runtime.machine))
        self._last_completed = runtime._tasks_completed
        self._idle_ticks = 0
        self._event = runtime.engine.schedule_every(
            self.interval,
            self._tick,
            kind=EventKind.RUNTIME,
            label="profile-checkpoint",
        )
        return self

    @property
    def active(self) -> bool:
        return self._event is not None and self._event.active

    # ------------------------------------------------------------------
    def checkpoint_now(self, *, run_complete: bool = False) -> dict:
        """Take one checkpoint immediately (also used by each tick)."""
        if self._rt is None:
            raise RuntimeError("checkpointer is not bound to a runtime")
        payload = self.store.checkpoint(
            self._rt.scheduler.table,
            sim_time=self._rt.engine.now,
            merge_base=self.merge_base,
            run_complete=run_complete,
        )
        self.checkpoints_taken += 1
        self.last_checkpoint_time = self._rt.engine.now
        return payload

    def finalize(self) -> Optional[dict]:
        """Stop the recurring event and write the final (run-complete)
        generation.  Idempotent; safe to call after an aborted run."""
        if self._event is not None:
            self._event.cancel()
            self._event = None
        if self._rt is None or self._finalized:
            return None
        self._finalized = True
        return self.checkpoint_now(run_complete=True)

    # ------------------------------------------------------------------
    def _all_groups_reliable(self) -> bool:
        """True when every size group dispatched so far has graduated
        from the learning phase (no group has learning left to lose)."""
        sched = self._rt.scheduler if self._rt is not None else None
        dispatches = getattr(sched, "group_dispatches", None)
        reliable_at = getattr(sched, "group_reliable_at", None)
        if not dispatches or reliable_at is None:
            return False  # nothing dispatched yet: assume still learning
        return all(gkey in reliable_at for gkey in dispatches)

    def _adapt_interval(self) -> None:
        assert self._rt is not None
        target = self.base_interval * (
            self.widen_factor if self._all_groups_reliable() else 1.0
        )
        if target == self.interval:
            return
        self.interval = target
        self.interval_history.append((self._rt.engine.now, target))
        if self._event is not None:
            # RecurringEvent re-reads .interval when scheduling the next
            # tick, so the new cadence takes effect from this tick on
            self._event.interval = target

    # ------------------------------------------------------------------
    def _tick(self) -> object:
        assert self._rt is not None
        self._adapt_interval()
        completed = self._rt._tasks_completed
        if completed == self._last_completed:
            if any(w.current is not None for w in self._rt.workers):
                # a task is running (its end event is queued): the run is
                # making progress, there's just nothing new to snapshot
                return None
            self._idle_ticks += 1
            if self._idle_ticks >= self.idle_limit:
                # no running task and no completions for idle_limit
                # ticks: retire so the empty-queue deadlock detection in
                # taskwait() can still fire
                self._event = None
                return False
            return None
        self._last_completed = completed
        self._idle_ticks = 0
        self.checkpoint_now(run_complete=False)
        return None
