"""``python -m repro.store`` — inspect and maintain profile-store files.

Subcommands::

    create    PATH                  start an empty store file
    inspect   PATH [--json]         summarise a store (or legacy hints) file
    diff      A B                   compare two stores entry by entry
    merge     -o OUT IN [IN ...]    merge stores with staleness decay
    prune     PATH                  drop stale/thin entries in place
    migrate   LEGACY -o OUT         lift a legacy hints file to schema v2

Exit status: 0 on success, 1 when a comparison finds differences
(``diff``), 2 on usage errors or corrupt/unreadable stores.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.store.format import (
    SCHEMA_VERSION,
    StoreError,
    empty_payload,
    read_payload,
    write_payload,
)
from repro.store.merge import (
    DEFAULT_DECAY,
    effective_executions,
    entry_count,
    merge_payloads,
    prune_payload,
)


def _iter_entries(payload: dict):
    """Yield ``(task, representative_bytes, version, stats)`` sorted."""
    for task_name in sorted(payload.get("tasks", {})):
        for g in sorted(
            payload["tasks"][task_name], key=lambda g: g["representative_bytes"]
        ):
            for vname in sorted(g.get("versions", {})):
                yield task_name, g["representative_bytes"], vname, g["versions"][vname]


def _summarise(path: str, payload: dict, *, as_json: bool) -> str:
    meta = payload.get("meta", {})
    if as_json:
        return json.dumps(payload, indent=2, sort_keys=True)
    lines = [
        f"store: {path}",
        f"  schema v{payload.get('schema_version', SCHEMA_VERSION)}"
        f"  fingerprint={payload.get('fingerprint') or '-'}",
        f"  grouping={payload.get('grouping')}  estimator={payload.get('estimator')}",
        f"  runs={meta.get('runs', 0)}  checkpoints={meta.get('checkpoints', 0)}"
        f"  invalidations={meta.get('invalidations', 0)}",
        f"  entries={entry_count(payload)}",
    ]
    last = meta.get("last_checkpoint")
    if last:
        state = "complete" if last.get("run_complete") else "mid-run"
        lines.append(
            f"  last checkpoint: t={last.get('sim_time', 0.0):.6f} ({state})"
        )
    for task, rep, vname, stats in _iter_entries(payload):
        eff = effective_executions(stats, DEFAULT_DECAY)
        lines.append(
            f"  {task} @{rep}B {vname}: mean={stats['mean_time']:.6g}s"
            f" execs={stats['executions']} stale={stats.get('stale_runs', 0)}"
            f" (effective {eff:.1f})"
        )
    return "\n".join(lines)


def _cmd_create(args: argparse.Namespace) -> int:
    write_payload(args.path, empty_payload(fingerprint=args.fingerprint))
    print(f"created empty store at {args.path}")
    return 0


def _cmd_inspect(args: argparse.Namespace) -> int:
    print(_summarise(args.path, read_payload(args.path), as_json=args.json))
    return 0


def _cmd_diff(args: argparse.Namespace) -> int:
    a = {(t, r, v): s for t, r, v, s in _iter_entries(read_payload(args.a))}
    b = {(t, r, v): s for t, r, v, s in _iter_entries(read_payload(args.b))}
    differences = 0
    for key in sorted(set(a) | set(b)):
        task, rep, vname = key
        label = f"{task} @{rep}B {vname}"
        if key not in b:
            print(f"- {label}: only in {args.a}")
        elif key not in a:
            print(f"+ {label}: only in {args.b}")
        else:
            sa, sb = a[key], b[key]
            deltas = []
            if abs(sa["mean_time"] - sb["mean_time"]) > args.tolerance * max(
                sa["mean_time"], sb["mean_time"], 1e-12
            ):
                deltas.append(f"mean {sa['mean_time']:.6g} -> {sb['mean_time']:.6g}")
            if sa["executions"] != sb["executions"]:
                deltas.append(f"execs {sa['executions']} -> {sb['executions']}")
            if sa.get("stale_runs", 0) != sb.get("stale_runs", 0):
                deltas.append(
                    f"stale {sa.get('stale_runs', 0)} -> {sb.get('stale_runs', 0)}"
                )
            if not deltas:
                continue
            print(f"~ {label}: " + ", ".join(deltas))
        differences += 1
    print(f"diff: {differences} differing entr{'y' if differences == 1 else 'ies'}")
    return 1 if differences else 0


def _cmd_merge(args: argparse.Namespace) -> int:
    payloads = [read_payload(p) for p in args.inputs]
    merged = merge_payloads(
        payloads, decay=args.decay, check_fingerprints=not args.ignore_fingerprints
    )
    write_payload(args.output, merged)
    print(
        f"merged {len(payloads)} store(s) -> {args.output} "
        f"({entry_count(merged)} entries)"
    )
    return 0


def _cmd_prune(args: argparse.Namespace) -> int:
    payload = read_payload(args.path)
    pruned, removed = prune_payload(
        payload,
        decay=args.decay,
        max_stale=args.max_stale,
        min_executions=args.min_executions,
    )
    if removed:
        write_payload(args.path, pruned)
    print(f"pruned {removed} entr{'y' if removed == 1 else 'ies'} from {args.path}")
    return 0


def _cmd_migrate(args: argparse.Namespace) -> int:
    payload = read_payload(args.legacy)  # migrates XML/JSON hints transparently
    write_payload(args.output, payload)
    print(
        f"migrated {args.legacy} -> {args.output} "
        f"(schema v{payload['schema_version']}, {entry_count(payload)} entries)"
    )
    return 0


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.store",
        description="Inspect and maintain durable profile stores.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("create", help="start an empty store file")
    p.add_argument("path")
    p.add_argument("--fingerprint", default=None, help="device-calibration tag")
    p.set_defaults(func=_cmd_create)

    p = sub.add_parser("inspect", help="summarise a store (or legacy hints) file")
    p.add_argument("path")
    p.add_argument("--json", action="store_true", help="dump the raw payload")
    p.set_defaults(func=_cmd_inspect)

    p = sub.add_parser("diff", help="compare two stores entry by entry")
    p.add_argument("a")
    p.add_argument("b")
    p.add_argument(
        "--tolerance",
        type=float,
        default=1e-9,
        help="relative mean-time difference to ignore (default 1e-9)",
    )
    p.set_defaults(func=_cmd_diff)

    p = sub.add_parser("merge", help="merge stores with staleness decay")
    p.add_argument("inputs", nargs="+", metavar="IN")
    p.add_argument("-o", "--output", required=True)
    p.add_argument("--decay", type=float, default=DEFAULT_DECAY)
    p.add_argument(
        "--ignore-fingerprints",
        action="store_true",
        help="merge even when device-calibration fingerprints differ",
    )
    p.set_defaults(func=_cmd_merge)

    p = sub.add_parser("prune", help="drop stale/thin entries in place")
    p.add_argument("path")
    p.add_argument("--decay", type=float, default=DEFAULT_DECAY)
    p.add_argument("--max-stale", type=int, default=None)
    p.add_argument("--min-executions", type=int, default=1)
    p.set_defaults(func=_cmd_prune)

    p = sub.add_parser("migrate", help="lift a legacy hints file to schema v2")
    p.add_argument("legacy")
    p.add_argument("-o", "--output", required=True)
    p.set_defaults(func=_cmd_migrate)

    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except StoreError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except OSError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    raise SystemExit(main())
