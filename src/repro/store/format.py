"""On-disk format of the profile store (schema v2).

A store file is a single JSON document::

    {
      "format": "repro-profile-store",
      "schema_version": 2,
      "fingerprint": "fp:..." | null,
      "meta": {"runs": N, "checkpoints": N, "invalidations": N,
               "last_checkpoint": {"sim_time": T, "run_complete": bool}},
      "grouping": "exact", "estimator": "mean",
      "tasks": {task: [{"representative_bytes": B,
                        "versions": {v: {"mean_time": s,
                                         "executions": n,
                                         "stale_runs": k,
                                         "variance": s2?}}}]}
    }

``tasks`` is a superset of the legacy §VII hints snapshot
(:mod:`repro.core.hints`): each version entry additionally carries
``stale_runs`` — how many completed runs have been merged into the store
since this entry was last refreshed — which drives staleness decay at
merge and warm-start time, and an optional non-negative ``variance``
(population variance of the observed execution times) so warm-started
runs can arm straggler deadlines (``mean + k·sigma``) before
re-observing a single execution.  ``variance`` is optional within
schema v2: v2 stores written before variance tracking read back
unchanged.

Durability: writes go to a temp file in the same directory followed by
an atomic :func:`os.replace`; the previous store generation is rotated
to ``<name>.bak`` first, so a crash mid-write always leaves at least one
readable generation on disk.  Reads validate the whole document and
raise :class:`StoreCorruptError` with a precise reason on truncated or
malformed files; legacy hints snapshots (XML or JSON) are migrated
in-memory to schema v2 transparently.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Optional, Union

FORMAT_NAME = "repro-profile-store"
SCHEMA_VERSION = 2

PathLike = Union[str, Path]


class StoreError(ValueError):
    """Base class for profile-store failures."""


class StoreCorruptError(StoreError):
    """The store file is truncated, malformed, or fails validation."""


class FingerprintMismatchError(StoreError):
    """Stores with incompatible device-calibration fingerprints."""


# ----------------------------------------------------------------------
# Construction / migration
# ----------------------------------------------------------------------
def empty_payload(
    *,
    fingerprint: Optional[str] = None,
    grouping: str = "exact",
    estimator: str = "mean",
) -> dict:
    """A fresh, valid schema-v2 payload with no profile data."""
    return {
        "format": FORMAT_NAME,
        "schema_version": SCHEMA_VERSION,
        "fingerprint": fingerprint,
        "meta": {
            "runs": 0,
            "checkpoints": 0,
            "invalidations": 0,
            "last_checkpoint": None,
        },
        "grouping": grouping,
        "estimator": estimator,
        "tasks": {},
    }


def migrate_legacy(snapshot: dict, *, fingerprint: Optional[str] = None) -> dict:
    """Lift a legacy hints snapshot (schema v1: the plain dict written by
    :func:`repro.core.hints.save_hints` / ``VersionProfileTable.to_dict``)
    into a schema-v2 payload.

    Legacy entries have no provenance, so they enter with
    ``stale_runs = 0`` and count as one merged run.
    """
    if not isinstance(snapshot, dict) or "tasks" not in snapshot:
        raise StoreCorruptError("legacy snapshot lacks a top-level 'tasks' mapping")
    payload = empty_payload(
        fingerprint=fingerprint,
        grouping=str(snapshot.get("grouping", "exact")),
        estimator=str(snapshot.get("estimator", "mean")),
    )
    payload["meta"]["runs"] = 1
    for task_name, groups in snapshot["tasks"].items():
        if not isinstance(groups, list):
            raise StoreCorruptError(
                f"legacy snapshot: groups of task {task_name!r} are not a list"
            )
        out_groups = []
        for g in groups:
            if "representative_bytes" not in g:
                raise StoreCorruptError(
                    f"legacy snapshot: group of task {task_name!r} lacks "
                    "'representative_bytes'"
                )
            versions = {}
            for vname, stats in g.get("versions", {}).items():
                mean = stats.get("mean_time")
                count = int(stats.get("executions", 0))
                if mean is None or count <= 0:
                    continue
                entry = {
                    "mean_time": float(mean),
                    "executions": count,
                    "stale_runs": 0,
                }
                variance = stats.get("variance")
                if variance is not None:
                    entry["variance"] = float(variance)
                versions[vname] = entry
            out_groups.append(
                {
                    "representative_bytes": int(g["representative_bytes"]),
                    "versions": versions,
                }
            )
        payload["tasks"][task_name] = out_groups
    return validate_payload(payload)


# ----------------------------------------------------------------------
# Validation
# ----------------------------------------------------------------------
def validate_payload(payload: dict) -> dict:
    """Check a payload against schema v2; returns it on success.

    Raises :class:`StoreCorruptError` naming the first offending field.
    """
    if not isinstance(payload, dict):
        raise StoreCorruptError(f"store root must be an object, got {type(payload).__name__}")
    fmt = payload.get("format")
    if fmt != FORMAT_NAME:
        raise StoreCorruptError(f"not a profile store (format={fmt!r})")
    version = payload.get("schema_version")
    if not isinstance(version, int) or version < 1:
        raise StoreCorruptError(f"bad schema_version {version!r}")
    if version > SCHEMA_VERSION:
        raise StoreCorruptError(
            f"store schema_version {version} is newer than supported "
            f"({SCHEMA_VERSION}); upgrade this runtime"
        )
    fp = payload.get("fingerprint")
    if fp is not None and not isinstance(fp, str):
        raise StoreCorruptError(f"fingerprint must be a string or null, got {fp!r}")
    meta = payload.get("meta")
    if not isinstance(meta, dict):
        raise StoreCorruptError("store lacks a 'meta' object")
    for counter in ("runs", "checkpoints", "invalidations"):
        v = meta.get(counter, 0)
        if not isinstance(v, int) or v < 0:
            raise StoreCorruptError(f"meta.{counter} must be a non-negative int, got {v!r}")
    tasks = payload.get("tasks")
    if not isinstance(tasks, dict):
        raise StoreCorruptError("store lacks a 'tasks' mapping")
    for task_name, groups in tasks.items():
        if not isinstance(groups, list):
            raise StoreCorruptError(f"tasks[{task_name!r}] must be a list of groups")
        for g in groups:
            if not isinstance(g, dict) or "representative_bytes" not in g:
                raise StoreCorruptError(
                    f"group of task {task_name!r} lacks 'representative_bytes'"
                )
            if int(g["representative_bytes"]) < 0:
                raise StoreCorruptError(
                    f"group of task {task_name!r} has negative representative_bytes"
                )
            versions = g.get("versions", {})
            if not isinstance(versions, dict):
                raise StoreCorruptError(
                    f"versions of task {task_name!r} must be a mapping"
                )
            for vname, stats in versions.items():
                if not isinstance(stats, dict):
                    raise StoreCorruptError(
                        f"entry {task_name!r}/{vname!r} must be an object"
                    )
                mean = stats.get("mean_time")
                if not isinstance(mean, (int, float)) or mean < 0 or mean != mean:
                    raise StoreCorruptError(
                        f"entry {task_name!r}/{vname!r} has invalid mean_time {mean!r}"
                    )
                execs = stats.get("executions")
                if not isinstance(execs, int) or execs < 1:
                    raise StoreCorruptError(
                        f"entry {task_name!r}/{vname!r} has invalid executions {execs!r}"
                    )
                stale = stats.get("stale_runs", 0)
                if not isinstance(stale, int) or stale < 0:
                    raise StoreCorruptError(
                        f"entry {task_name!r}/{vname!r} has invalid stale_runs {stale!r}"
                    )
                var = stats.get("variance")
                if var is not None and (
                    not isinstance(var, (int, float)) or var < 0 or var != var
                ):
                    raise StoreCorruptError(
                        f"entry {task_name!r}/{vname!r} has invalid variance {var!r}"
                    )
    return payload


# ----------------------------------------------------------------------
# I/O
# ----------------------------------------------------------------------
def read_payload(path: PathLike) -> dict:
    """Read + validate a store file; migrates legacy hints transparently.

    Accepts schema-v2 JSON stores, legacy JSON hints snapshots and
    legacy XML hints files; anything else raises
    :class:`StoreCorruptError` with the path and the parse failure.
    """
    path = Path(path)
    try:
        raw = path.read_bytes()
    except OSError as exc:
        raise StoreError(f"cannot read profile store {path}: {exc}") from exc
    stripped = raw.lstrip()
    if stripped.startswith(b"<"):
        # legacy XML hints snapshot
        from repro.core.hints import _from_xml

        try:
            snapshot = _from_xml(raw)
        except ValueError as exc:
            raise StoreCorruptError(f"{path}: {exc}") from exc
        return migrate_legacy(snapshot)
    try:
        payload = json.loads(raw.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise StoreCorruptError(
            f"{path}: truncated or malformed JSON ({exc})"
        ) from exc
    if isinstance(payload, dict) and payload.get("format") != FORMAT_NAME:
        # legacy JSON hints snapshot (no format marker)
        try:
            return migrate_legacy(payload)
        except StoreCorruptError as exc:
            raise StoreCorruptError(f"{path}: {exc}") from exc
    try:
        return validate_payload(payload)
    except StoreCorruptError as exc:
        raise StoreCorruptError(f"{path}: {exc}") from exc


def write_payload(path: PathLike, payload: dict) -> None:
    """Atomically write ``payload`` to ``path``, rotating the previous
    generation to ``<path>.bak``.

    The document lands in a temp file in the destination directory and
    is moved into place with :func:`os.replace`, so readers never see a
    half-written store.
    """
    path = Path(path)
    validate_payload(payload)
    path.parent.mkdir(parents=True, exist_ok=True)
    text = json.dumps(payload, indent=2, sort_keys=True)
    fd, tmp_name = tempfile.mkstemp(
        prefix=f".{path.name}.", suffix=".tmp", dir=path.parent
    )
    try:
        with os.fdopen(fd, "w") as fh:
            fh.write(text)
        if path.exists():
            os.replace(path, backup_path(path))
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise


def backup_path(path: PathLike) -> Path:
    """Where :func:`write_payload` rotates the previous generation."""
    path = Path(path)
    return path.with_name(path.name + ".bak")
