"""The durable profile store.

:class:`ProfileStore` wraps one on-disk store file and provides the
run-lifecycle operations the runtime integration uses:

* :meth:`hints` — decayed warm-start snapshot for a new scheduler,
* :meth:`begin_run` — open a run against the store: load the current
  generation, invalidate it if the device-calibration fingerprint
  changed, and age every entry by one run,
* :meth:`checkpoint` / :meth:`commit` — durably snapshot a (possibly
  still running) scheduler's learning tables, atomically and with
  rotation, merging the aged pre-run baseline back in unless the run
  was warm-started from this same store (in which case the live table
  *is* the continuation of the baseline and merging would double-count),
* :meth:`absorb` — the batch form used by ``repro.reproduce``: fold the
  final tables of one or more completed runs into the store in a single
  aging step.

Concurrency: every generation write happens under an advisory
``fcntl.flock`` on a ``<name>.lock`` sidecar (POSIX only — a no-op where
:mod:`fcntl` is unavailable), polled non-blocking until ``lock_timeout``
and then failing loudly with :class:`StoreLockTimeoutError`.  While the
lock is held, a write first folds in whatever another process committed
since this run read its baseline, so concurrent runs sharing one store
lose neither side's learning.

Everything raises :class:`repro.store.format.StoreError` subclasses with
precise messages; a corrupt store is never silently overwritten (the
previous generation survives as ``<name>.bak``).
"""

from __future__ import annotations

import os
import time
from contextlib import contextmanager
from pathlib import Path
from typing import TYPE_CHECKING, Iterable, Iterator, Optional, Union

from repro.store import merge as merge_mod
from repro.store.format import (
    PathLike,
    StoreError,
    backup_path,
    empty_payload,
    migrate_legacy,
    read_payload,
    validate_payload,
    write_payload,
)
from repro.store.merge import DEFAULT_DECAY, age_payload, merge_payloads, to_hints

try:  # pragma: no cover - exercised implicitly on POSIX
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platforms
    fcntl = None  # type: ignore[assignment]

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.profile import VersionProfileTable


class StoreLockTimeoutError(StoreError):
    """Could not acquire the store's advisory lock within the timeout."""


class ProfileStore:
    """One durable, mergeable profile database backed by a JSON file."""

    def __init__(
        self,
        path: PathLike,
        *,
        decay: float = DEFAULT_DECAY,
        lock_timeout: float = 10.0,
    ) -> None:
        self.path = Path(path)
        self.decay = decay
        if lock_timeout < 0:
            raise StoreError(f"lock_timeout must be non-negative, got {lock_timeout}")
        self.lock_timeout = lock_timeout
        self._lock_poll = 0.02
        # aged baseline of the run opened by begin_run (None outside one)
        self._base: Optional[dict] = None
        self._checkpoints_this_run = 0
        # raw on-disk text last seen by this process; a mismatch under
        # the lock means another process wrote a generation concurrently
        self._seen_text: Optional[str] = None

    # ------------------------------------------------------------------
    # Locking
    # ------------------------------------------------------------------
    @property
    def lock_path(self) -> Path:
        """The advisory-lock sidecar guarding generation writes."""
        return self.path.with_name(self.path.name + ".lock")

    @contextmanager
    def _locked(self) -> Iterator[None]:
        """Hold the store's advisory lock (no-op where flock is absent).

        Non-blocking acquisition polled every ``_lock_poll`` seconds so a
        crashed-while-holding writer (flock dies with its process) never
        wedges us, but a *live* contender surfaces as
        :class:`StoreLockTimeoutError` after ``lock_timeout`` seconds.
        """
        if fcntl is None:
            yield
            return
        self.lock_path.parent.mkdir(parents=True, exist_ok=True)
        fd = os.open(self.lock_path, os.O_CREAT | os.O_RDWR, 0o644)
        try:
            deadline = time.monotonic() + self.lock_timeout
            while True:
                try:
                    fcntl.flock(fd, fcntl.LOCK_EX | fcntl.LOCK_NB)
                    break
                except OSError:
                    if time.monotonic() >= deadline:
                        raise StoreLockTimeoutError(
                            f"could not lock profile store {self.path} within "
                            f"{self.lock_timeout:g}s (held by another process?)"
                        ) from None
                    time.sleep(self._lock_poll)
            try:
                yield
            finally:
                fcntl.flock(fd, fcntl.LOCK_UN)
        finally:
            os.close(fd)

    def _read_text(self) -> Optional[str]:
        try:
            return self.path.read_text()
        except OSError:
            return None

    def _merge_concurrent(self, payload: dict) -> dict:
        """Under the lock: fold in generations another process committed
        since this process last read or wrote the store.

        This run's metadata and fingerprint win (counters stay
        monotonic via per-counter max); profile entries merge by the
        usual #Exec-weighted rule so neither side's learning is lost.
        """
        current_text = self._read_text()
        if current_text is None or current_text == self._seen_text:
            return payload
        try:
            current = read_payload(self.path)
        except StoreError:
            return payload  # concurrent writer left garbage: ours wins
        merged = merge_payloads(
            [current, payload], decay=self.decay, check_fingerprints=False
        )
        meta = dict(payload.get("meta", {}))
        cur_meta = current.get("meta", {})
        for counter in ("runs", "checkpoints", "invalidations"):
            meta[counter] = max(
                int(meta.get(counter) or 0), int(cur_meta.get(counter) or 0)
            )
        merged["meta"] = meta
        merged["fingerprint"] = payload.get("fingerprint")
        return merged

    def _write_generation(self, payload: dict) -> dict:
        """Serialize one generation write: lock, merge concurrent, write."""
        with self._locked():
            payload = self._merge_concurrent(payload)
            write_payload(self.path, payload)
        self._seen_text = self._read_text()
        return payload

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def exists(self) -> bool:
        return self.path.exists()

    def load(self) -> dict:
        """The validated current payload (legacy files are migrated)."""
        return read_payload(self.path)

    def load_or_empty(self, *, fingerprint: Optional[str] = None) -> dict:
        if self.exists():
            return self.load()
        return empty_payload(fingerprint=fingerprint)

    def hints(self, *, decay: Optional[float] = None) -> Optional[dict]:
        """Warm-start snapshot for ``VersioningScheduler(hints=...)``,
        with staleness decay applied; ``None`` when the store does not
        exist or holds no usable entries."""
        if not self.exists():
            return None
        snapshot = to_hints(self.load(), decay=self.decay if decay is None else decay)
        return snapshot if snapshot["tasks"] else None

    # ------------------------------------------------------------------
    # Run lifecycle
    # ------------------------------------------------------------------
    def begin_run(self, *, fingerprint: Optional[str] = None) -> dict:
        """Open a run: load, fingerprint-check, and age the baseline.

        A fingerprint mismatch *invalidates* the store — learned times
        from different device calibrations are not comparable — keeping
        the metadata (and bumping ``meta.invalidations``) but dropping
        every profile entry.  The aged baseline is cached for the run's
        checkpoints.  Idempotent per run: call once before checkpointing.
        """
        base = self.load_or_empty(fingerprint=fingerprint)
        if (
            fingerprint is not None
            and base.get("fingerprint") is not None
            and base["fingerprint"] != fingerprint
        ):
            invalidated = empty_payload(
                fingerprint=fingerprint,
                grouping=str(base.get("grouping", "exact")),
                estimator=str(base.get("estimator", "mean")),
            )
            invalidated["meta"] = dict(base["meta"])
            invalidated["meta"]["invalidations"] = (
                base["meta"].get("invalidations", 0) + 1
            )
            base = invalidated
        elif fingerprint is not None:
            base["fingerprint"] = fingerprint
        self._base = age_payload(base, by=1)
        self._checkpoints_this_run = 0
        self._seen_text = self._read_text()
        return self._base

    def checkpoint(
        self,
        table: "VersionProfileTable",
        *,
        sim_time: float = 0.0,
        merge_base: bool = True,
        run_complete: bool = False,
    ) -> dict:
        """Durably snapshot ``table`` mid-run (atomic write + rotation).

        ``merge_base`` folds the aged pre-run baseline back in; pass
        ``False`` when the scheduler was warm-started from this store,
        whose counts the live table then already contains.
        """
        if self._base is None:
            self.begin_run()
        assert self._base is not None
        live = migrate_legacy(table.to_dict(), fingerprint=self._base.get("fingerprint"))
        if merge_base:
            payload = merge_payloads([self._base, live], decay=self.decay)
        else:
            payload = live
            payload["fingerprint"] = self._base.get("fingerprint")
        self._checkpoints_this_run += 1
        meta = dict(self._base.get("meta", {}))
        meta["runs"] = meta.get("runs", 0) + (1 if run_complete else 0)
        meta["checkpoints"] = meta.get("checkpoints", 0) + self._checkpoints_this_run
        meta["last_checkpoint"] = {
            "sim_time": float(sim_time),
            "run_complete": bool(run_complete),
        }
        payload["meta"] = meta
        payload = self._write_generation(payload)
        if run_complete:
            self._base = None
            self._checkpoints_this_run = 0
        return payload

    def commit(
        self,
        table: "VersionProfileTable",
        *,
        sim_time: float = 0.0,
        merge_base: bool = True,
    ) -> dict:
        """Final snapshot of a completed run (closes the run)."""
        return self.checkpoint(
            table, sim_time=sim_time, merge_base=merge_base, run_complete=True
        )

    def absorb(
        self,
        tables: "Union[VersionProfileTable, Iterable[VersionProfileTable]]",
        *,
        fingerprint: Optional[str] = None,
        sim_time: float = 0.0,
        merge_base: bool = True,
    ) -> Optional[dict]:
        """Fold the final tables of completed run(s) into the store as a
        single aging step (used by the ``--profile-store`` CLI flag).

        Pass ``merge_base=False`` when the runs were warm-started from
        this store: their tables already contain its history, so merging
        the baseline again would double-weight it.
        """
        from repro.core.profile import VersionProfileTable

        if isinstance(tables, VersionProfileTable):
            tables = [tables]
        snapshots = [
            migrate_legacy(t.to_dict(), fingerprint=fingerprint) for t in tables
        ]
        snapshots = [s for s in snapshots if s["tasks"]]
        if not snapshots:
            return None
        self.begin_run(fingerprint=fingerprint)
        assert self._base is not None
        combined = merge_payloads(snapshots, decay=self.decay)
        if merge_base:
            payload = merge_payloads([self._base, combined], decay=self.decay)
        else:
            payload = combined
            payload["fingerprint"] = self._base.get("fingerprint")
        meta = dict(self._base.get("meta", {}))
        meta["runs"] = meta.get("runs", 0) + 1
        meta["checkpoints"] = meta.get("checkpoints", 0) + 1
        meta["last_checkpoint"] = {"sim_time": float(sim_time), "run_complete": True}
        payload["meta"] = meta
        payload = self._write_generation(payload)
        self._base = None
        return payload

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------
    def prune(
        self, *, max_stale: Optional[int] = None, min_executions: int = 1
    ) -> int:
        """Drop stale/thin entries in place; returns entries removed."""
        with self._locked():
            payload, removed = merge_mod.prune_payload(
                self.load(),
                decay=self.decay,
                max_stale=max_stale,
                min_executions=min_executions,
            )
            if removed:
                write_payload(self.path, payload)
        self._seen_text = self._read_text()
        return removed

    def migrate_file(self, legacy_path: PathLike) -> dict:
        """Import a legacy hints file (XML/JSON) as this store's content."""
        payload = read_payload(legacy_path)
        with self._locked():
            write_payload(self.path, payload)
        self._seen_text = self._read_text()
        return payload

    @property
    def backup(self) -> Path:
        """Path of the rotated previous generation."""
        return backup_path(self.path)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ProfileStore({str(self.path)!r}, decay={self.decay})"


def warm_start_options(
    store: ProfileStore, *, policy: str = "trust", decay: Optional[float] = None
) -> dict:
    """Scheduler kwargs that warm-start a ``VersioningScheduler`` from
    ``store`` under the given policy (``trust``/``probation``/``cold``)."""
    opts: dict = {"warm_start": policy}
    if policy != "cold":
        hints = store.hints(decay=decay)
        if hints is not None:
            opts["hints"] = hints
    return opts


__all__ = [
    "ProfileStore",
    "StoreLockTimeoutError",
    "warm_start_options",
    "validate_payload",
]
