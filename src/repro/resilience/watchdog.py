"""Straggler and livelock detection: adaptive deadlines + progress watchdog.

The versioning scheduler continuously learns per-version execution-time
profiles (§IV-B).  This module closes the loop from those profiles back
into execution *supervision*: if the scheduler knows how long a version
usually takes — and, since variance tracking, how much that varies — it
also knows when a running execution has taken implausibly long.

Two watchdogs:

* :class:`TaskWatchdog` — per-task adaptive deadlines.  When a task
  starts, a deadline event is armed at

      ``start + max(floor, grace·mean + k·sigma)``

  using the learned (mean, sigma) of the chosen version at the task's
  size group.  While a group is still learning (or has too few samples
  for a variance), the deadline falls back to a *cold-start multiplier*
  of the best available estimate — the learned mean if one exists, else
  the device cost model's nominal duration.  On expiry the watchdog
  emits a ``straggler`` trace record and hands the task to the
  :class:`~repro.resilience.recovery.ResilienceManager`'s recovery path
  (speculative re-execution, or cancel-and-retry when no alternate
  (version, worker) pair is available).

* :class:`ProgressWatchdog` — global livelock/deadlock detection.  A
  recurring event checks every ``horizon`` simulated seconds whether any
  task completed; after ``stall_limit`` consecutive horizons with
  unfinished tasks and no completions, the run fails with a
  :class:`ProgressStallError` carrying a diagnostic dump of every
  worker, instead of spinning (or hanging the host process) forever.

Both piggyback on the simulation's own event loop, so detection times
are deterministic and replayable like everything else.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.sim.engine import Event, EventKind, RecurringEvent

if TYPE_CHECKING:  # pragma: no cover
    from repro.resilience.recovery import RecoveryPolicy, ResilienceManager
    from repro.runtime.runtime import OmpSsRuntime
    from repro.runtime.task import TaskInstance
    from repro.runtime.worker import Worker


class ProgressStallError(RuntimeError):
    """The run made no progress for too long while tasks were pending."""

    def __init__(self, message: str, dump: str) -> None:
        super().__init__(f"{message}\n{dump}")
        self.dump = dump


# ----------------------------------------------------------------------
# Per-task adaptive deadlines
# ----------------------------------------------------------------------
class TaskWatchdog:
    """Arms one deadline event per running task, from learned profiles.

    Owned by the :class:`ResilienceManager`; the runtime notifies task
    starts/stops, the watchdog owns the deadline arithmetic and the
    pending events.  ``armed_log`` keeps ``(label, deadline, source)``
    tuples for tests and diagnostics — ``source`` is ``"profile"`` when
    the deadline came from ``mean + k·sigma`` of a reliable profile and
    ``"cold"`` when the cold-start multiplier was used.
    """

    def __init__(self, manager: "ResilienceManager") -> None:
        self.manager = manager
        self._events: dict[int, Event] = {}
        #: (task label, armed deadline in seconds, "profile" | "cold")
        self.armed_log: list[tuple[str, float, str]] = []

    @property
    def policy(self) -> "RecoveryPolicy":
        return self.manager.policy

    @property
    def rt(self) -> Optional["OmpSsRuntime"]:
        return self.manager.rt

    # ------------------------------------------------------------------
    def deadline_for(self, t: "TaskInstance", nominal: float) -> tuple[float, str]:
        """The deadline (seconds after start) for one execution of ``t``.

        Returns ``(deadline, source)``.  ``nominal`` is the runtime's
        own duration estimate (device cost model), the fallback of last
        resort when no profile exists at all.
        """
        policy = self.policy
        mean: Optional[float] = None
        sigma: Optional[float] = None
        samples = 0
        table = getattr(self.rt.scheduler, "table", None) if self.rt else None
        if table is not None and t.chosen_version is not None:
            profile = table.group(t.name, t.data_bytes).profile(t.chosen_version.name)
            mean = profile.mean_time
            sigma = profile.stddev
            samples = profile.executions
        if mean is None:
            return max(policy.deadline_floor, policy.cold_multiplier * nominal), "cold"
        if sigma is None or samples < policy.min_deadline_samples:
            return max(policy.deadline_floor, policy.cold_multiplier * mean), "cold"
        deadline = policy.deadline_grace * mean + policy.deadline_k * sigma
        return max(policy.deadline_floor, deadline), "profile"

    # ------------------------------------------------------------------
    def arm(self, t: "TaskInstance", worker: "Worker", nominal: float) -> None:
        """Schedule the deadline for an execution that just started."""
        rt = self.rt
        assert rt is not None
        deadline, source = self.deadline_for(t, nominal)
        self.armed_log.append((t.label, deadline, source))
        self._events[t.uid] = rt.engine.schedule(
            rt.engine.now + deadline,
            lambda: self._expired(t, worker),
            kind=EventKind.WATCHDOG,
            label=f"deadline {t.label}",
        )

    def disarm(self, t: "TaskInstance") -> None:
        ev = self._events.pop(t.uid, None)
        if ev is not None:
            ev.cancel()

    def armed(self, t: "TaskInstance") -> bool:
        return t.uid in self._events

    # ------------------------------------------------------------------
    def _expired(self, t: "TaskInstance", worker: "Worker") -> None:
        self._events.pop(t.uid, None)
        # stale deadline: the execution already ended (or the worker was
        # repurposed) between arming and expiry
        if worker.current is not t:
            return
        self.manager.on_straggler(t, worker)


# ----------------------------------------------------------------------
# Global progress watchdog
# ----------------------------------------------------------------------
class ProgressWatchdog:
    """Fails the run loudly when nothing completes for too long.

    A hang with no other pending events already surfaces through the
    runtime's empty-queue deadlock detection; but any recurring service
    (checkpointing, this watchdog itself) keeps the queue non-empty, and
    a hang alongside an otherwise-busy machine stalls only *part* of the
    DAG.  The progress watchdog covers both: after ``stall_limit``
    consecutive horizons with unfinished tasks and zero completions, it
    raises :class:`ProgressStallError` with a per-worker diagnostic dump.
    """

    def __init__(
        self,
        runtime: "OmpSsRuntime",
        horizon: float,
        *,
        stall_limit: int = 3,
    ) -> None:
        if horizon <= 0:
            raise ValueError(f"progress horizon must be positive, got {horizon}")
        if stall_limit < 1:
            raise ValueError(f"stall_limit must be >= 1, got {stall_limit}")
        self.rt = runtime
        self.horizon = horizon
        self.stall_limit = stall_limit
        self.stalled_horizons = 0
        self._last_completed = runtime._tasks_completed
        self._event: RecurringEvent = runtime.engine.schedule_every(
            horizon,
            self._tick,
            kind=EventKind.WATCHDOG,
            label="progress-watchdog",
        )

    @property
    def active(self) -> bool:
        return self._event.active

    def cancel(self) -> None:
        self._event.cancel()

    # ------------------------------------------------------------------
    def _tick(self) -> object:
        rt = self.rt
        completed = rt._tasks_completed
        if completed != self._last_completed:
            self._last_completed = completed
            self.stalled_horizons = 0
            return None
        if not rt.graph.unfinished:
            return False  # run drained; retire the series
        self.stalled_horizons += 1
        if self.stalled_horizons < self.stall_limit:
            return None
        raise ProgressStallError(
            f"no task completed for {self.stalled_horizons} consecutive "
            f"progress horizons ({self.stalled_horizons * self.horizon:.6g}s "
            f"simulated) with {rt.graph.unfinished} task(s) unfinished",
            self.dump(),
        )

    # ------------------------------------------------------------------
    def dump(self) -> str:
        """Human-readable snapshot of where the run is stuck."""
        rt = self.rt
        lines = [
            f"progress watchdog dump at t={rt.engine.now:.6g}s:",
            f"  tasks: {rt._tasks_completed} completed, "
            f"{rt.graph.unfinished} unfinished, "
            f"{rt._tasks_submitted} submitted",
            f"  events: {rt.engine.pending} pending, "
            f"{rt.engine.events_processed} processed",
        ]
        pool = getattr(rt.scheduler, "pool_size", None)
        if pool is not None:
            lines.append(f"  scheduler pool: {pool()} ready task(s) undispatched")
        for w in rt.workers:
            state = "alive"
            if not w.alive:
                state = "dead"
            elif w.quarantined_until is not None:
                state = f"quarantined until {w.quarantined_until:.6g}"
            running = "-"
            if w.current is not None:
                running = (
                    f"{w.current.label} (version "
                    f"{w.current.chosen_version.name if w.current.chosen_version else '?'}, "
                    f"running since {w.current.start_time:.6g}s)"
                )
            lines.append(
                f"  {w.name}: {state}, running={running}, queued={len(w.queue)}"
            )
        return "\n".join(lines)


__all__ = ["ProgressStallError", "ProgressWatchdog", "TaskWatchdog"]
