"""Deterministic fault plans.

A :class:`FaultPlan` is an immutable description of every failure a run
should suffer.  Like the perturbation models in :mod:`repro.sim.perturb`
all decisions are deterministic functions of call counts and a seed —
never of wall-clock time or object identity — so two runs with the same
plan produce byte-identical traces, and a failure scenario found once
can be replayed forever.

Eight failure classes are modelled:

* **Transient task faults** (:class:`TaskFaultRule`): a kernel faults
  part-way through execution (ECC error, kernel launch failure, a
  segfaulting hand-written CUDA kernel).  The task instance survives and
  must be retried — preferably as a *different* (version, worker) pair,
  which the paper's multi-version tables make possible.
* **Permanent worker failures** (:class:`WorkerFailure`): a device drops
  off the bus at a given simulated time.  Its queued and running tasks
  must be re-dispatched and it must leave the scheduler's candidate set.
* **Transfer faults** (:class:`TransferFaultRule`): a link transfer
  errors and is retried with deterministic exponential backoff by the
  transfer engine.
* **Hangs** (:class:`HangRule`): a matching task execution never
  completes — the kernel livelocks, the device driver wedges.  Nothing
  crashes, so only the straggler watchdog (profile-derived deadlines)
  can notice and recover via speculation or retry.
* **Slowdowns** (:class:`WorkerSlowdown`): a worker executes at a
  degraded rate from a given simulated time (thermal throttling, a
  contended PCIe link, a co-scheduled noisy neighbour).  The worker
  stays alive and keeps accepting work, silently stretching every
  execution — the classic straggler.
* **Message faults** (:class:`MessageFaultRule`): control messages
  (``TransferEngine.send_message`` traffic — the cluster notification
  protocol and its acks) are dropped, duplicated, or delayed in flight.
  The unreliable-interconnect model: only the reliable delivery
  protocol (sequence numbers, acks, retransmits) survives it.
* **Link degradation** (:class:`LinkDegradation`): a directed link's
  bandwidth and/or latency degrade inside a time window (a flapping
  switch port, a congested spine) — the network analogue of
  :class:`WorkerSlowdown`.  Both data transfers and messages stretch.
* **Node crashes** (:class:`NodeCrashRule`): a whole cluster node dies
  at a given time — its workers, its NIC, and its shard scheduler —
  optionally rejoining after a window.  Surviving nodes must evacuate
  its shard and recompute its lost region copies.

The plan itself is stateless; :meth:`FaultPlan.injector` builds the
per-run mutable counters/RNGs so one plan can drive many runs.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional, Sequence


def _as_tuple(seq: Sequence) -> tuple:
    return tuple(seq) if not isinstance(seq, tuple) else seq


def _rule_error(rule, msg: str) -> ValueError:
    """A ValueError naming the offending rule (class + fields)."""
    return ValueError(f"{rule!r}: {msg}")


@dataclass(frozen=True)
class TaskFaultRule:
    """When matching task executions suffer a transient fault.

    Parameters
    ----------
    worker:
        Worker (``"w:gpu0"``) or device (``"gpu0"``) name the rule
        applies to; ``None`` matches every worker.
    kernel:
        Cost-model kernel name (i.e. the task version's kernel) the rule
        applies to; ``None`` matches every kernel.
    at_starts:
        1-based indices, *counted per rule over matching starts*, that
        fault deterministically: ``(1, 3)`` fails the first and third
        matching execution.
    probability:
        Additionally fail each matching start with this probability,
        drawn from the plan's seeded RNG (deterministic given the run's
        event order, which is itself deterministic).
    work_fraction:
        Fraction of the version's simulated duration consumed before the
        fault fires — failed work still occupies the worker.
    """

    worker: Optional[str] = None
    kernel: Optional[str] = None
    at_starts: tuple[int, ...] = ()
    probability: float = 0.0
    work_fraction: float = 0.5

    def __post_init__(self) -> None:
        object.__setattr__(self, "at_starts", _as_tuple(self.at_starts))
        if any(n < 1 for n in self.at_starts):
            raise _rule_error(self, "at_starts indices are 1-based and must be >= 1")
        if not 0.0 <= self.probability <= 1.0:
            raise _rule_error(self, "probability must be in [0, 1]")
        if not 0.0 < self.work_fraction <= 1.0:
            raise _rule_error(self, "work_fraction must be in (0, 1]")
        if not self.at_starts and self.probability == 0.0:
            raise _rule_error(self, "rule can never fire: give at_starts or probability")

    def matches(self, worker_name: str, device_name: str, kernel: str) -> bool:
        if self.worker is not None and self.worker not in (worker_name, device_name):
            return False
        if self.kernel is not None and self.kernel != kernel:
            return False
        return True


@dataclass(frozen=True)
class TransferFaultRule:
    """When matching link transfer attempts fail.

    ``at_attempts`` counts attempts per (rule, directed link) — so
    ``at_attempts=(1,)`` with ``src="host", dst="gpu0"`` fails exactly
    the first copy attempted over host→gpu0, which the transfer engine
    then retries with backoff.
    """

    src: Optional[str] = None
    dst: Optional[str] = None
    at_attempts: tuple[int, ...] = ()
    probability: float = 0.0

    def __post_init__(self) -> None:
        object.__setattr__(self, "at_attempts", _as_tuple(self.at_attempts))
        if any(n < 1 for n in self.at_attempts):
            raise _rule_error(self, "at_attempts indices are 1-based and must be >= 1")
        if not 0.0 <= self.probability <= 1.0:
            raise _rule_error(self, "probability must be in [0, 1]")
        if not self.at_attempts and self.probability == 0.0:
            raise _rule_error(self, "rule can never fire: give at_attempts or probability")

    def matches(self, src: str, dst: str) -> bool:
        if self.src is not None and self.src != src:
            return False
        if self.dst is not None and self.dst != dst:
            return False
        return True


@dataclass(frozen=True)
class HangRule:
    """When matching task executions hang forever.

    A hung execution occupies its worker indefinitely and never fires a
    completion event; without a deadline watchdog the run stalls.  Match
    semantics are those of :class:`TaskFaultRule`: ``at_starts`` indices
    are 1-based and counted per rule over matching starts, and
    ``probability`` draws from the rule's seeded RNG stream.
    """

    worker: Optional[str] = None
    kernel: Optional[str] = None
    at_starts: tuple[int, ...] = ()
    probability: float = 0.0

    def __post_init__(self) -> None:
        object.__setattr__(self, "at_starts", _as_tuple(self.at_starts))
        if any(n < 1 for n in self.at_starts):
            raise _rule_error(self, "at_starts indices are 1-based and must be >= 1")
        if not 0.0 <= self.probability <= 1.0:
            raise _rule_error(self, "probability must be in [0, 1]")
        if not self.at_starts and self.probability == 0.0:
            raise _rule_error(self, "rule can never fire: give at_starts or probability")

    def matches(self, worker_name: str, device_name: str, kernel: str) -> bool:
        if self.worker is not None and self.worker not in (worker_name, device_name):
            return False
        if self.kernel is not None and self.kernel != kernel:
            return False
        return True


@dataclass(frozen=True)
class WorkerSlowdown:
    """A worker executes at a degraded rate from ``at_time`` on.

    ``worker`` names either the worker (``"w:gpu1"``) or its device
    (``"gpu1"``).  Every task *started* on the worker at or after
    ``at_time`` takes ``factor`` times its nominal duration; tasks
    already running are unaffected (their end events are committed).
    ``until`` optionally ends the degradation (``None`` = permanent).
    Overlapping slowdowns of one worker compose multiplicatively.
    """

    worker: str
    at_time: float
    factor: float
    until: Optional[float] = None

    def __post_init__(self) -> None:
        if self.at_time < 0:
            raise _rule_error(self, "at_time must be non-negative")
        if self.factor <= 0:
            raise _rule_error(self, "slowdown factor must be positive")
        if self.until is not None and self.until <= self.at_time:
            raise _rule_error(self, "until must be after at_time (inverted window)")

    def active_at(self, now: float) -> bool:
        return now >= self.at_time and (self.until is None or now < self.until)

    def matches(self, worker_name: str, device_name: str) -> bool:
        return self.worker in (worker_name, device_name)


@dataclass(frozen=True)
class WorkerFailure:
    """A permanent worker death at an absolute simulated time.

    ``worker`` names either the worker (``"w:gpu1"``) or its device
    (``"gpu1"``).  From ``at_time`` on, the worker accepts no work; its
    queued and running tasks are re-dispatched by the runtime.
    """

    worker: str
    at_time: float

    def __post_init__(self) -> None:
        if self.at_time < 0:
            raise _rule_error(self, "at_time must be non-negative")


@dataclass(frozen=True)
class MessageFaultRule:
    """When matching control messages suffer an in-flight fault.

    Applies to :meth:`TransferEngine.send_message` traffic — the cluster
    notification protocol and its acknowledgements; data transfers are
    covered by :class:`TransferFaultRule` / :class:`LinkDegradation`.

    Parameters
    ----------
    src, dst:
        Host memory-space names the rule applies to (``"host"``,
        ``"node2"``); ``None`` matches either endpoint.
    label:
        Message-label prefix the rule applies to (``"ack:"`` targets
        only acknowledgements); ``None`` matches every label.
    drop:
        Probability a matching transmission is lost in flight (the
        bytes still occupy the wire — loss is detected, not avoided).
    duplicate:
        Probability a matching transmission is delivered twice (a
        retransmitting switch): the receiver must suppress the copy.
    delay:
        Probability a matching transmission is held back ``delay_time``
        seconds past its wire arrival (reorder: later messages overtake).
    delay_time:
        The extra in-flight delay of a delayed message (seconds).
    at_messages:
        1-based indices, counted per rule over matching transmissions,
        that are dropped deterministically (replaying a found scenario).
    """

    src: Optional[str] = None
    dst: Optional[str] = None
    label: Optional[str] = None
    drop: float = 0.0
    duplicate: float = 0.0
    delay: float = 0.0
    delay_time: float = 0.0
    at_messages: tuple[int, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "at_messages", _as_tuple(self.at_messages))
        if any(n < 1 for n in self.at_messages):
            raise _rule_error(self, "at_messages indices are 1-based and must be >= 1")
        for name in ("drop", "duplicate", "delay"):
            p = getattr(self, name)
            if not 0.0 <= p <= 1.0:
                raise _rule_error(self, f"{name} probability must be in [0, 1]")
        if self.delay_time < 0:
            raise _rule_error(self, "delay_time must be non-negative")
        if self.delay > 0.0 and self.delay_time == 0.0:
            raise _rule_error(self, "delay without delay_time has no effect")
        if (
            not self.at_messages
            and self.drop == 0.0
            and self.duplicate == 0.0
            and self.delay == 0.0
        ):
            raise _rule_error(
                self, "rule can never fire: give at_messages or a probability"
            )

    def matches(self, src: str, dst: str, label: str) -> bool:
        if self.src is not None and self.src != src:
            return False
        if self.dst is not None and self.dst != dst:
            return False
        if self.label is not None and not label.startswith(self.label):
            return False
        return True


@dataclass(frozen=True)
class MessageFault:
    """Outcome of one faulted transmission (at most one action fires)."""

    drop: bool = False
    duplicate: bool = False
    delay: float = 0.0


@dataclass(frozen=True)
class LinkDegradation:
    """A directed link degrades inside a time window.

    The network analogue of :class:`WorkerSlowdown`: every hop over the
    matching link *starting* inside ``[at_time, until)`` takes
    ``bandwidth_factor`` times its bandwidth term and
    ``latency_factor`` times its latency term.  ``src``/``dst`` name
    memory spaces (``None`` = wildcard); overlapping degradations of
    one link compose multiplicatively.
    """

    src: Optional[str] = None
    dst: Optional[str] = None
    at_time: float = 0.0
    until: Optional[float] = None
    bandwidth_factor: float = 1.0
    latency_factor: float = 1.0

    def __post_init__(self) -> None:
        if self.at_time < 0:
            raise _rule_error(self, "at_time must be non-negative")
        if self.until is not None and self.until <= self.at_time:
            raise _rule_error(self, "until must be after at_time (inverted window)")
        if self.bandwidth_factor < 1.0:
            raise _rule_error(self, "bandwidth_factor must be >= 1 (a degradation)")
        if self.latency_factor < 1.0:
            raise _rule_error(self, "latency_factor must be >= 1 (a degradation)")
        if self.bandwidth_factor == 1.0 and self.latency_factor == 1.0:
            raise _rule_error(
                self, "rule can never fire: give bandwidth_factor or latency_factor"
            )

    def active_at(self, now: float) -> bool:
        return now >= self.at_time and (self.until is None or now < self.until)

    def matches(self, src: str, dst: str) -> bool:
        if self.src is not None and self.src != src:
            return False
        if self.dst is not None and self.dst != dst:
            return False
        return True


@dataclass(frozen=True)
class NodeCrashRule:
    """A whole cluster node dies at ``at_time``.

    Its workers abort, its NIC stops delivering (in-flight messages and
    transfers addressed to it are lost), and its shard is evacuated by
    the sharded cluster scheduler.  With ``rejoin_after`` set, the node
    comes back that many seconds later with a new epoch — workers
    revive empty-handed and stale pre-crash messages are fenced off.
    Node 0 hosts the application's home memory and cannot crash.
    """

    node: int
    at_time: float
    rejoin_after: Optional[float] = None

    def __post_init__(self) -> None:
        if self.node < 0:
            raise _rule_error(self, "node must be a non-negative node id")
        if self.node == 0:
            raise _rule_error(self, "node 0 hosts the home memory and cannot crash")
        if self.at_time < 0:
            raise _rule_error(self, "at_time must be non-negative")
        if self.rejoin_after is not None and self.rejoin_after <= 0:
            raise _rule_error(self, "rejoin_after must be positive (or None)")


@dataclass(frozen=True)
class FaultPlan:
    """The full failure scenario of one run (immutable, reusable)."""

    seed: int = 0
    task_faults: tuple[TaskFaultRule, ...] = ()
    transfer_faults: tuple[TransferFaultRule, ...] = ()
    worker_failures: tuple[WorkerFailure, ...] = ()
    hangs: tuple[HangRule, ...] = ()
    slowdowns: tuple[WorkerSlowdown, ...] = ()
    message_faults: tuple[MessageFaultRule, ...] = ()
    link_degradations: tuple[LinkDegradation, ...] = ()
    node_crashes: tuple[NodeCrashRule, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "task_faults", _as_tuple(self.task_faults))
        object.__setattr__(self, "transfer_faults", _as_tuple(self.transfer_faults))
        object.__setattr__(self, "worker_failures", _as_tuple(self.worker_failures))
        object.__setattr__(self, "hangs", _as_tuple(self.hangs))
        object.__setattr__(self, "slowdowns", _as_tuple(self.slowdowns))
        object.__setattr__(self, "message_faults", _as_tuple(self.message_faults))
        object.__setattr__(
            self, "link_degradations", _as_tuple(self.link_degradations)
        )
        object.__setattr__(self, "node_crashes", _as_tuple(self.node_crashes))
        seen: set[str] = set()
        for wf in self.worker_failures:
            if wf.worker in seen:
                raise ValueError(f"worker {wf.worker!r} fails twice in one plan")
            seen.add(wf.worker)
        seen_nodes: set[int] = set()
        for nc in self.node_crashes:
            if nc.node in seen_nodes:
                raise _rule_error(nc, f"node {nc.node} crashes twice in one plan")
            seen_nodes.add(nc.node)

    @property
    def empty(self) -> bool:
        return not (
            self.task_faults
            or self.transfer_faults
            or self.worker_failures
            or self.hangs
            or self.slowdowns
            or self.message_faults
            or self.link_degradations
            or self.node_crashes
        )

    def injector(self) -> "FaultInjector":
        """Fresh per-run mutable state (counters + seeded RNG streams)."""
        return FaultInjector(self)


class FaultInjector:
    """Per-run evaluation of a :class:`FaultPlan`.

    Holds the per-rule match counters and one RNG stream per rule
    (seeded from ``plan.seed`` and the rule index, so adding a rule
    never perturbs the draws of the others).  Rules are evaluated in
    declaration order; the first rule that fires wins.
    """

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self._task_counts = [0] * len(plan.task_faults)
        self._task_sets = [frozenset(r.at_starts) for r in plan.task_faults]
        self._task_rngs = [
            random.Random(f"{plan.seed}:task:{i}") for i in range(len(plan.task_faults))
        ]
        # (rule index, src, dst) -> attempts seen
        self._xfer_counts: dict[tuple[int, str, str], int] = {}
        self._xfer_sets = [frozenset(r.at_attempts) for r in plan.transfer_faults]
        self._xfer_rngs = [
            random.Random(f"{plan.seed}:xfer:{i}")
            for i in range(len(plan.transfer_faults))
        ]
        self._hang_counts = [0] * len(plan.hangs)
        self._hang_sets = [frozenset(r.at_starts) for r in plan.hangs]
        self._hang_rngs = [
            random.Random(f"{plan.seed}:hang:{i}") for i in range(len(plan.hangs))
        ]
        self._msg_counts = [0] * len(plan.message_faults)
        self._msg_sets = [frozenset(r.at_messages) for r in plan.message_faults]
        self._msg_rngs = [
            random.Random(f"{plan.seed}:msg:{i}")
            for i in range(len(plan.message_faults))
        ]

    def task_fault(
        self, worker_name: str, device_name: str, kernel: str
    ) -> Optional[float]:
        """Consulted at each task start.

        Returns the ``work_fraction`` at which the execution faults, or
        ``None`` for a clean run.
        """
        for i, rule in enumerate(self.plan.task_faults):
            if not rule.matches(worker_name, device_name, kernel):
                continue
            self._task_counts[i] += 1
            if self._task_counts[i] in self._task_sets[i]:
                return rule.work_fraction
            if rule.probability > 0.0 and self._task_rngs[i].random() < rule.probability:
                return rule.work_fraction
        return None

    def task_hang(self, worker_name: str, device_name: str, kernel: str) -> bool:
        """Consulted at each task start; True = this execution hangs."""
        for i, rule in enumerate(self.plan.hangs):
            if not rule.matches(worker_name, device_name, kernel):
                continue
            self._hang_counts[i] += 1
            if self._hang_counts[i] in self._hang_sets[i]:
                return True
            if rule.probability > 0.0 and self._hang_rngs[i].random() < rule.probability:
                return True
        return False

    def slowdown_factor(self, worker_name: str, device_name: str, now: float) -> float:
        """Composed duration multiplier for a task starting on the worker
        at simulated ``now`` (1.0 = nominal speed)."""
        factor = 1.0
        for rule in self.plan.slowdowns:
            if rule.matches(worker_name, device_name) and rule.active_at(now):
                factor *= rule.factor
        return factor

    def message_fault(self, src: str, dst: str, label: str) -> Optional[MessageFault]:
        """Consulted per message transmission (retransmits included).

        Returns the fault the transmission suffers, or ``None`` for a
        clean flight.  Rules are evaluated in declaration order; within
        a rule the actions are drawn in a fixed order (drop, duplicate,
        delay) from its own RNG stream, so adding a rule never perturbs
        the draws of the others.
        """
        for i, rule in enumerate(self.plan.message_faults):
            if not rule.matches(src, dst, label):
                continue
            self._msg_counts[i] += 1
            if self._msg_counts[i] in self._msg_sets[i]:
                return MessageFault(drop=True)
            rng = self._msg_rngs[i]
            if rule.drop > 0.0 and rng.random() < rule.drop:
                return MessageFault(drop=True)
            if rule.duplicate > 0.0 and rng.random() < rule.duplicate:
                return MessageFault(duplicate=True)
            if rule.delay > 0.0 and rng.random() < rule.delay:
                return MessageFault(delay=rule.delay_time)
        return None

    def link_factors(self, src: str, dst: str, now: float) -> tuple[float, float]:
        """Composed ``(bandwidth_factor, latency_factor)`` of a hop over
        ``src -> dst`` starting at simulated ``now`` (1.0 = nominal)."""
        bw = 1.0
        lat = 1.0
        for rule in self.plan.link_degradations:
            if rule.matches(src, dst) and rule.active_at(now):
                bw *= rule.bandwidth_factor
                lat *= rule.latency_factor
        return bw, lat

    def transfer_fault(self, src: str, dst: str) -> bool:
        """Consulted per transfer attempt per link hop; True = it fails."""
        for i, rule in enumerate(self.plan.transfer_faults):
            if not rule.matches(src, dst):
                continue
            key = (i, src, dst)
            n = self._xfer_counts.get(key, 0) + 1
            self._xfer_counts[key] = n
            if n in self._xfer_sets[i]:
                return True
            if rule.probability > 0.0 and self._xfer_rngs[i].random() < rule.probability:
                return True
        return False
