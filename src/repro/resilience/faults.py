"""Deterministic fault plans.

A :class:`FaultPlan` is an immutable description of every failure a run
should suffer.  Like the perturbation models in :mod:`repro.sim.perturb`
all decisions are deterministic functions of call counts and a seed —
never of wall-clock time or object identity — so two runs with the same
plan produce byte-identical traces, and a failure scenario found once
can be replayed forever.

Five failure classes are modelled:

* **Transient task faults** (:class:`TaskFaultRule`): a kernel faults
  part-way through execution (ECC error, kernel launch failure, a
  segfaulting hand-written CUDA kernel).  The task instance survives and
  must be retried — preferably as a *different* (version, worker) pair,
  which the paper's multi-version tables make possible.
* **Permanent worker failures** (:class:`WorkerFailure`): a device drops
  off the bus at a given simulated time.  Its queued and running tasks
  must be re-dispatched and it must leave the scheduler's candidate set.
* **Transfer faults** (:class:`TransferFaultRule`): a link transfer
  errors and is retried with deterministic exponential backoff by the
  transfer engine.
* **Hangs** (:class:`HangRule`): a matching task execution never
  completes — the kernel livelocks, the device driver wedges.  Nothing
  crashes, so only the straggler watchdog (profile-derived deadlines)
  can notice and recover via speculation or retry.
* **Slowdowns** (:class:`WorkerSlowdown`): a worker executes at a
  degraded rate from a given simulated time (thermal throttling, a
  contended PCIe link, a co-scheduled noisy neighbour).  The worker
  stays alive and keeps accepting work, silently stretching every
  execution — the classic straggler.

The plan itself is stateless; :meth:`FaultPlan.injector` builds the
per-run mutable counters/RNGs so one plan can drive many runs.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional, Sequence


def _as_tuple(seq: Sequence) -> tuple:
    return tuple(seq) if not isinstance(seq, tuple) else seq


@dataclass(frozen=True)
class TaskFaultRule:
    """When matching task executions suffer a transient fault.

    Parameters
    ----------
    worker:
        Worker (``"w:gpu0"``) or device (``"gpu0"``) name the rule
        applies to; ``None`` matches every worker.
    kernel:
        Cost-model kernel name (i.e. the task version's kernel) the rule
        applies to; ``None`` matches every kernel.
    at_starts:
        1-based indices, *counted per rule over matching starts*, that
        fault deterministically: ``(1, 3)`` fails the first and third
        matching execution.
    probability:
        Additionally fail each matching start with this probability,
        drawn from the plan's seeded RNG (deterministic given the run's
        event order, which is itself deterministic).
    work_fraction:
        Fraction of the version's simulated duration consumed before the
        fault fires — failed work still occupies the worker.
    """

    worker: Optional[str] = None
    kernel: Optional[str] = None
    at_starts: tuple[int, ...] = ()
    probability: float = 0.0
    work_fraction: float = 0.5

    def __post_init__(self) -> None:
        object.__setattr__(self, "at_starts", _as_tuple(self.at_starts))
        if any(n < 1 for n in self.at_starts):
            raise ValueError("at_starts indices are 1-based and must be >= 1")
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError("probability must be in [0, 1]")
        if not 0.0 < self.work_fraction <= 1.0:
            raise ValueError("work_fraction must be in (0, 1]")
        if not self.at_starts and self.probability == 0.0:
            raise ValueError("rule can never fire: give at_starts or probability")

    def matches(self, worker_name: str, device_name: str, kernel: str) -> bool:
        if self.worker is not None and self.worker not in (worker_name, device_name):
            return False
        if self.kernel is not None and self.kernel != kernel:
            return False
        return True


@dataclass(frozen=True)
class TransferFaultRule:
    """When matching link transfer attempts fail.

    ``at_attempts`` counts attempts per (rule, directed link) — so
    ``at_attempts=(1,)`` with ``src="host", dst="gpu0"`` fails exactly
    the first copy attempted over host→gpu0, which the transfer engine
    then retries with backoff.
    """

    src: Optional[str] = None
    dst: Optional[str] = None
    at_attempts: tuple[int, ...] = ()
    probability: float = 0.0

    def __post_init__(self) -> None:
        object.__setattr__(self, "at_attempts", _as_tuple(self.at_attempts))
        if any(n < 1 for n in self.at_attempts):
            raise ValueError("at_attempts indices are 1-based and must be >= 1")
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError("probability must be in [0, 1]")
        if not self.at_attempts and self.probability == 0.0:
            raise ValueError("rule can never fire: give at_attempts or probability")

    def matches(self, src: str, dst: str) -> bool:
        if self.src is not None and self.src != src:
            return False
        if self.dst is not None and self.dst != dst:
            return False
        return True


@dataclass(frozen=True)
class HangRule:
    """When matching task executions hang forever.

    A hung execution occupies its worker indefinitely and never fires a
    completion event; without a deadline watchdog the run stalls.  Match
    semantics are those of :class:`TaskFaultRule`: ``at_starts`` indices
    are 1-based and counted per rule over matching starts, and
    ``probability`` draws from the rule's seeded RNG stream.
    """

    worker: Optional[str] = None
    kernel: Optional[str] = None
    at_starts: tuple[int, ...] = ()
    probability: float = 0.0

    def __post_init__(self) -> None:
        object.__setattr__(self, "at_starts", _as_tuple(self.at_starts))
        if any(n < 1 for n in self.at_starts):
            raise ValueError("at_starts indices are 1-based and must be >= 1")
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError("probability must be in [0, 1]")
        if not self.at_starts and self.probability == 0.0:
            raise ValueError("rule can never fire: give at_starts or probability")

    def matches(self, worker_name: str, device_name: str, kernel: str) -> bool:
        if self.worker is not None and self.worker not in (worker_name, device_name):
            return False
        if self.kernel is not None and self.kernel != kernel:
            return False
        return True


@dataclass(frozen=True)
class WorkerSlowdown:
    """A worker executes at a degraded rate from ``at_time`` on.

    ``worker`` names either the worker (``"w:gpu1"``) or its device
    (``"gpu1"``).  Every task *started* on the worker at or after
    ``at_time`` takes ``factor`` times its nominal duration; tasks
    already running are unaffected (their end events are committed).
    ``until`` optionally ends the degradation (``None`` = permanent).
    Overlapping slowdowns of one worker compose multiplicatively.
    """

    worker: str
    at_time: float
    factor: float
    until: Optional[float] = None

    def __post_init__(self) -> None:
        if self.at_time < 0:
            raise ValueError("at_time must be non-negative")
        if self.factor <= 0:
            raise ValueError("slowdown factor must be positive")
        if self.until is not None and self.until <= self.at_time:
            raise ValueError("until must be after at_time")

    def active_at(self, now: float) -> bool:
        return now >= self.at_time and (self.until is None or now < self.until)

    def matches(self, worker_name: str, device_name: str) -> bool:
        return self.worker in (worker_name, device_name)


@dataclass(frozen=True)
class WorkerFailure:
    """A permanent worker death at an absolute simulated time.

    ``worker`` names either the worker (``"w:gpu1"``) or its device
    (``"gpu1"``).  From ``at_time`` on, the worker accepts no work; its
    queued and running tasks are re-dispatched by the runtime.
    """

    worker: str
    at_time: float

    def __post_init__(self) -> None:
        if self.at_time < 0:
            raise ValueError("at_time must be non-negative")


@dataclass(frozen=True)
class FaultPlan:
    """The full failure scenario of one run (immutable, reusable)."""

    seed: int = 0
    task_faults: tuple[TaskFaultRule, ...] = ()
    transfer_faults: tuple[TransferFaultRule, ...] = ()
    worker_failures: tuple[WorkerFailure, ...] = ()
    hangs: tuple[HangRule, ...] = ()
    slowdowns: tuple[WorkerSlowdown, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "task_faults", _as_tuple(self.task_faults))
        object.__setattr__(self, "transfer_faults", _as_tuple(self.transfer_faults))
        object.__setattr__(self, "worker_failures", _as_tuple(self.worker_failures))
        object.__setattr__(self, "hangs", _as_tuple(self.hangs))
        object.__setattr__(self, "slowdowns", _as_tuple(self.slowdowns))
        seen: set[str] = set()
        for wf in self.worker_failures:
            if wf.worker in seen:
                raise ValueError(f"worker {wf.worker!r} fails twice in one plan")
            seen.add(wf.worker)

    @property
    def empty(self) -> bool:
        return not (
            self.task_faults
            or self.transfer_faults
            or self.worker_failures
            or self.hangs
            or self.slowdowns
        )

    def injector(self) -> "FaultInjector":
        """Fresh per-run mutable state (counters + seeded RNG streams)."""
        return FaultInjector(self)


class FaultInjector:
    """Per-run evaluation of a :class:`FaultPlan`.

    Holds the per-rule match counters and one RNG stream per rule
    (seeded from ``plan.seed`` and the rule index, so adding a rule
    never perturbs the draws of the others).  Rules are evaluated in
    declaration order; the first rule that fires wins.
    """

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self._task_counts = [0] * len(plan.task_faults)
        self._task_sets = [frozenset(r.at_starts) for r in plan.task_faults]
        self._task_rngs = [
            random.Random(f"{plan.seed}:task:{i}") for i in range(len(plan.task_faults))
        ]
        # (rule index, src, dst) -> attempts seen
        self._xfer_counts: dict[tuple[int, str, str], int] = {}
        self._xfer_sets = [frozenset(r.at_attempts) for r in plan.transfer_faults]
        self._xfer_rngs = [
            random.Random(f"{plan.seed}:xfer:{i}")
            for i in range(len(plan.transfer_faults))
        ]
        self._hang_counts = [0] * len(plan.hangs)
        self._hang_sets = [frozenset(r.at_starts) for r in plan.hangs]
        self._hang_rngs = [
            random.Random(f"{plan.seed}:hang:{i}") for i in range(len(plan.hangs))
        ]

    def task_fault(
        self, worker_name: str, device_name: str, kernel: str
    ) -> Optional[float]:
        """Consulted at each task start.

        Returns the ``work_fraction`` at which the execution faults, or
        ``None`` for a clean run.
        """
        for i, rule in enumerate(self.plan.task_faults):
            if not rule.matches(worker_name, device_name, kernel):
                continue
            self._task_counts[i] += 1
            if self._task_counts[i] in self._task_sets[i]:
                return rule.work_fraction
            if rule.probability > 0.0 and self._task_rngs[i].random() < rule.probability:
                return rule.work_fraction
        return None

    def task_hang(self, worker_name: str, device_name: str, kernel: str) -> bool:
        """Consulted at each task start; True = this execution hangs."""
        for i, rule in enumerate(self.plan.hangs):
            if not rule.matches(worker_name, device_name, kernel):
                continue
            self._hang_counts[i] += 1
            if self._hang_counts[i] in self._hang_sets[i]:
                return True
            if rule.probability > 0.0 and self._hang_rngs[i].random() < rule.probability:
                return True
        return False

    def slowdown_factor(self, worker_name: str, device_name: str, now: float) -> float:
        """Composed duration multiplier for a task starting on the worker
        at simulated ``now`` (1.0 = nominal speed)."""
        factor = 1.0
        for rule in self.plan.slowdowns:
            if rule.matches(worker_name, device_name) and rule.active_at(now):
                factor *= rule.factor
        return factor

    def transfer_fault(self, src: str, dst: str) -> bool:
        """Consulted per transfer attempt per link hop; True = it fails."""
        for i, rule in enumerate(self.plan.transfer_faults):
            if not rule.matches(src, dst):
                continue
            key = (i, src, dst)
            n = self._xfer_counts.get(key, 0) + 1
            self._xfer_counts[key] = n
            if n in self._xfer_sets[i]:
                return True
            if rule.probability > 0.0 and self._xfer_rngs[i].random() < rule.probability:
                return True
        return False
