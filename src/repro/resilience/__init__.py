"""Resilience: deterministic fault injection and recovery.

The paper's multi-version tasks (``implements``) give the runtime a
natural *graceful-degradation* mechanism: when a device faults, the task
can re-run as a different (version, worker) pair and the versioning
scheduler's learning tables steer the retry.  This package supplies

* :mod:`repro.resilience.faults` — a seeded, fully deterministic
  :class:`FaultPlan` describing transient task faults, permanent worker
  failures, link transfer errors, task hangs, worker slowdowns, and —
  for cluster runs — unreliable-interconnect rules
  (:class:`MessageFaultRule` drop/duplicate/delay of notification
  traffic, :class:`LinkDegradation` time-windowed bandwidth/latency
  multipliers, :class:`NodeCrashRule` whole-node crashes with optional
  rejoin), all with the same reproducibility discipline as
  :mod:`repro.sim.perturb`,
* :mod:`repro.resilience.recovery` — the :class:`RecoveryPolicy`
  (retry budgets, quarantine, speculation) and the
  :class:`ResilienceManager` that the runtime consults at task start /
  transfer time and notifies on every fault,
* :mod:`repro.resilience.watchdog` — profile-derived adaptive deadlines
  (:class:`TaskWatchdog`) feeding speculative re-execution of
  stragglers, and the global :class:`ProgressWatchdog` that fails a
  livelocked run with a diagnostic dump.
"""

from repro.resilience.faults import (
    FaultInjector,
    FaultPlan,
    HangRule,
    LinkDegradation,
    MessageFault,
    MessageFaultRule,
    NodeCrashRule,
    TaskFaultRule,
    TransferFaultRule,
    WorkerFailure,
    WorkerSlowdown,
)
from repro.resilience.recovery import (
    RecoveryPolicy,
    ResilienceManager,
    ResilienceStats,
    TaskRetryExceededError,
    TransferRetryExceededError,
    default_recovery_policy,
    recovery_defaults,
)
from repro.resilience.watchdog import (
    ProgressStallError,
    ProgressWatchdog,
    TaskWatchdog,
)

__all__ = [
    "FaultInjector",
    "FaultPlan",
    "HangRule",
    "LinkDegradation",
    "MessageFault",
    "MessageFaultRule",
    "NodeCrashRule",
    "TaskFaultRule",
    "TransferFaultRule",
    "WorkerFailure",
    "WorkerSlowdown",
    "RecoveryPolicy",
    "ResilienceManager",
    "ResilienceStats",
    "TaskRetryExceededError",
    "TransferRetryExceededError",
    "default_recovery_policy",
    "recovery_defaults",
    "ProgressStallError",
    "ProgressWatchdog",
    "TaskWatchdog",
]
