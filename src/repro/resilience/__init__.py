"""Resilience: deterministic fault injection and recovery.

The paper's multi-version tasks (``implements``) give the runtime a
natural *graceful-degradation* mechanism: when a device faults, the task
can re-run as a different (version, worker) pair and the versioning
scheduler's learning tables steer the retry.  This package supplies

* :mod:`repro.resilience.faults` — a seeded, fully deterministic
  :class:`FaultPlan` describing transient task faults, permanent worker
  failures and link transfer errors (same reproducibility discipline as
  :mod:`repro.sim.perturb`),
* :mod:`repro.resilience.recovery` — the :class:`RecoveryPolicy`
  (retry budgets, quarantine) and the :class:`ResilienceManager` that
  the runtime consults at task start / transfer time and notifies on
  every fault.
"""

from repro.resilience.faults import (
    FaultInjector,
    FaultPlan,
    TaskFaultRule,
    TransferFaultRule,
    WorkerFailure,
)
from repro.resilience.recovery import (
    RecoveryPolicy,
    ResilienceManager,
    ResilienceStats,
    TaskRetryExceededError,
    TransferRetryExceededError,
)

__all__ = [
    "FaultInjector",
    "FaultPlan",
    "TaskFaultRule",
    "TransferFaultRule",
    "WorkerFailure",
    "RecoveryPolicy",
    "ResilienceManager",
    "ResilienceStats",
    "TaskRetryExceededError",
    "TransferRetryExceededError",
]
