"""Recovery policy: retry budgets, worker quarantine, failure accounting.

The :class:`ResilienceManager` is the runtime's single point of contact
with the fault model.  The runtime *consults* it (does this task start
fault?  does this transfer attempt fail?) and *notifies* it (a task
faulted, a task succeeded, a worker died); the manager owns every
recovery decision:

* **retry budget** — a faulted task re-enters the ready pool until it
  has failed ``max_task_retries`` times, then the run aborts with
  :class:`TaskRetryExceededError`,
* **alternate-pair preference** — the failed (version, worker) pair is
  recorded on the task instance; version-aware schedulers consult it and
  prefer a different pair, turning the paper's ``implements`` tables
  into a graceful-degradation mechanism,
* **quarantine** — ``quarantine_threshold`` *consecutive* transient
  faults on one worker (a success resets the streak) put it in
  quarantine: its queue is drained back to the scheduler and it accepts
  no work for ``quarantine_cooldown`` simulated seconds (scaled by
  ``quarantine_backoff`` per repeat offence).  Re-admission is
  probationary: one more fault re-quarantines immediately, one success
  fully rehabilitates.
* **profile integrity** — a faulted execution never reaches the
  versioning scheduler's profile tables (durations are recorded only in
  ``task_finished``), so surviving workers' estimates stay valid after
  failures.
* **straggler recovery** — with ``speculate`` enabled, every task start
  arms a profile-derived deadline (:class:`~repro.resilience.watchdog.
  TaskWatchdog`).  On expiry the manager launches a *speculative copy*
  of the task on the best alternate (version, worker) pair; the first
  execution to finish wins, the loser is cancelled and its results are
  discarded.  When no alternate pair exists (or the concurrent-
  speculation budget is spent) the straggling execution is aborted and
  retried through the normal transient-fault path.  A lost race counts
  as a strike in the loser worker's quarantine streak — a persistently
  slow worker eventually quarantines itself out of the candidate set.

Everything is driven by simulated time and deterministic counters, so
recovery behaviour is exactly reproducible.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterator, Optional

from repro.resilience.faults import FaultPlan
from repro.resilience.watchdog import TaskWatchdog
from repro.sim.engine import EventKind

if TYPE_CHECKING:  # pragma: no cover
    from repro.runtime.runtime import OmpSsRuntime
    from repro.runtime.task import TaskInstance
    from repro.runtime.worker import Worker


class TaskRetryExceededError(RuntimeError):
    """A task instance exhausted its retry budget."""


class TransferRetryExceededError(RuntimeError):
    """A link transfer kept failing past the bounded retry budget."""


@dataclass
class RecoveryPolicy:
    """Tunables of the recovery machinery."""

    #: Times one task instance may *fail* before the run aborts.
    max_task_retries: int = 3
    #: Consecutive transient faults on one worker before quarantine.
    quarantine_threshold: int = 3
    #: Quarantine length in simulated seconds.
    quarantine_cooldown: float = 0.5
    #: Cooldown multiplier applied per repeated quarantine of a worker.
    quarantine_backoff: float = 2.0
    #: Times one transfer hop may fail before the run aborts.
    transfer_max_retries: int = 3
    #: Base backoff before transfer retry n: ``backoff * 2**(n-1)``.
    transfer_backoff: float = 1e-4
    # -- straggler watchdog / speculative re-execution -----------------
    #: Arm profile-derived deadlines on every task start and recover
    #: stragglers by speculative duplication (or cancel-and-retry).
    speculate: bool = False
    #: Sigma multiplier of the reliable deadline ``grace·mean + k·sigma``.
    deadline_k: float = 4.0
    #: Mean multiplier of the reliable deadline — headroom so that a
    #: zero-variance profile (deterministic cost models) still leaves a
    #: margin above the expected duration.
    deadline_grace: float = 1.5
    #: Absolute lower bound on any armed deadline (simulated seconds),
    #: guarding against degenerate near-zero profiles.
    deadline_floor: float = 1e-6
    #: Deadline multiplier while a profile is cold: with fewer than
    #: ``min_deadline_samples`` samples the deadline is this many times
    #: the best available estimate (learned mean, else the device cost
    #: model's nominal duration).
    cold_multiplier: float = 8.0
    #: Samples before ``mean + k·sigma`` is trusted over the cold path.
    min_deadline_samples: int = 2
    #: Speculative copies allowed in flight at once (across the run).
    max_concurrent_speculations: int = 2
    #: Speculative copies allowed per task instance (lifetime).
    max_speculations_per_task: int = 1

    def __post_init__(self) -> None:
        if self.max_task_retries < 0:
            raise ValueError("max_task_retries must be >= 0")
        if self.quarantine_threshold < 1:
            raise ValueError("quarantine_threshold must be >= 1")
        if self.quarantine_cooldown < 0:
            raise ValueError("quarantine_cooldown must be >= 0")
        if self.quarantine_backoff < 1.0:
            raise ValueError("quarantine_backoff must be >= 1")
        if self.transfer_max_retries < 0:
            raise ValueError("transfer_max_retries must be >= 0")
        if self.transfer_backoff < 0:
            raise ValueError("transfer_backoff must be >= 0")
        if self.deadline_k < 0:
            raise ValueError("deadline_k must be >= 0")
        if self.deadline_grace < 1.0:
            raise ValueError("deadline_grace must be >= 1")
        if self.deadline_floor < 0:
            raise ValueError("deadline_floor must be >= 0")
        if self.cold_multiplier < 1.0:
            raise ValueError("cold_multiplier must be >= 1")
        if self.min_deadline_samples < 2:
            raise ValueError("min_deadline_samples must be >= 2 (variance "
                             "needs two samples)")
        if self.max_concurrent_speculations < 1:
            raise ValueError("max_concurrent_speculations must be >= 1")
        if self.max_speculations_per_task < 1:
            raise ValueError("max_speculations_per_task must be >= 1")


#: Process-wide default policy override, set via :func:`recovery_defaults`
#: so entry points (the CLI's ``--speculate``/``--deadline-k`` flags) can
#: parameterise runtimes they do not construct themselves.
_default_policy: Optional[RecoveryPolicy] = None


def default_recovery_policy() -> RecoveryPolicy:
    """The policy a runtime gets when none is passed explicitly."""
    return _default_policy if _default_policy is not None else RecoveryPolicy()


@contextmanager
def recovery_defaults(policy: RecoveryPolicy) -> Iterator[RecoveryPolicy]:
    """Make ``policy`` the default for runtimes created in this scope."""
    global _default_policy
    prev = _default_policy
    _default_policy = policy
    try:
        yield policy
    finally:
        _default_policy = prev


@dataclass
class ResilienceStats:
    """Fault/recovery counters exposed on :class:`RunResult`."""

    task_faults: int = 0          # transient task failures injected
    retries: int = 0              # task re-dispatches caused by faults
    worker_failures: int = 0      # permanent worker deaths
    tasks_redispatched: int = 0   # queued/running tasks pulled off a dead
                                  # or quarantined worker
    quarantines: int = 0
    readmissions: int = 0
    transfer_faults: int = 0      # failed transfer attempts
    transfer_retries: int = 0     # transfer attempts re-issued
    hangs: int = 0                # injected never-completing executions
    straggler_detected: int = 0   # adaptive deadline expiries
    speculations_launched: int = 0
    speculations_won: int = 0     # speculative copy finished first
    speculations_wasted: int = 0  # copies cancelled or beaten by the original
    # -- unreliable interconnect / node crashes ------------------------
    messages_dropped: int = 0     # transmissions lost in flight
    messages_duplicated: int = 0  # transmissions delivered twice
    messages_delayed: int = 0     # transmissions held past wire arrival
    node_crashes: int = 0         # whole-node deaths
    node_rejoins: int = 0         # crashed nodes that came back
    regions_lost: int = 0         # regions whose only valid copies died
    recompute_tasks: int = 0      # lost-writer executions re-charged

    def as_dict(self) -> dict[str, int]:
        return {
            "task_faults": self.task_faults,
            "retries": self.retries,
            "worker_failures": self.worker_failures,
            "tasks_redispatched": self.tasks_redispatched,
            "quarantines": self.quarantines,
            "readmissions": self.readmissions,
            "transfer_faults": self.transfer_faults,
            "transfer_retries": self.transfer_retries,
            "hangs": self.hangs,
            "straggler_detected": self.straggler_detected,
            "speculations_launched": self.speculations_launched,
            "speculations_won": self.speculations_won,
            "speculations_wasted": self.speculations_wasted,
            "messages_dropped": self.messages_dropped,
            "messages_duplicated": self.messages_duplicated,
            "messages_delayed": self.messages_delayed,
            "node_crashes": self.node_crashes,
            "node_rejoins": self.node_rejoins,
            "regions_lost": self.regions_lost,
            "recompute_tasks": self.recompute_tasks,
        }

    @property
    def any_failures(self) -> bool:
        return any(self.as_dict().values())


class ResilienceManager:
    """Owns fault consultation and recovery for one runtime instance."""

    def __init__(
        self,
        plan: Optional[FaultPlan] = None,
        policy: Optional[RecoveryPolicy] = None,
    ) -> None:
        self.plan = plan
        self.policy = policy if policy is not None else default_recovery_policy()
        self.stats = ResilienceStats()
        self.injector = plan.injector() if plan is not None and not plan.empty else None
        self.rt: Optional["OmpSsRuntime"] = None
        self.watchdog = TaskWatchdog(self)
        # worker name -> consecutive transient faults since last success
        self._transient: dict[str, int] = {}
        # worker name -> how many times it has been quarantined
        self._quarantine_count: dict[str, int] = {}
        # cumulative per-worker history, feeding the versioning
        # scheduler's fault-aware cost estimation (`fault_aware=True`)
        self._worker_faults: dict[str, int] = {}
        self._worker_completions: dict[str, int] = {}
        # primary uid -> shadow uid of the speculation currently in flight
        self._active_spec: dict[int, int] = {}
        # primary uid -> speculative copies launched for it (lifetime)
        self._spec_count: dict[int, int] = {}

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def bind(self, runtime: "OmpSsRuntime") -> None:
        """Attach to a runtime; schedules the plan's worker deaths."""
        self.rt = runtime
        self._transient = {w.name: 0 for w in runtime.workers}
        if self.plan is None:
            return
        for wf in self.plan.worker_failures:
            worker = self._resolve_worker(wf.worker)
            runtime.engine.schedule(
                wf.at_time,
                lambda w=worker: runtime._worker_down(w),
                kind=EventKind.WORKER_DOWN,
                label=f"fail {worker.name}",
            )
        if self.plan.node_crashes:
            layout = runtime.node_topology
            if layout is None or layout.n_nodes < 2:
                raise ValueError(
                    "fault plan schedules node crashes but the runtime has no "
                    "multi-node topology (use a cluster machine with the "
                    "sharded cluster scheduler)"
                )
            for nc in self.plan.node_crashes:
                if nc.node not in layout.host_of_node:
                    raise ValueError(
                        f"fault plan crashes unknown node {nc.node} "
                        f"(cluster has nodes {sorted(layout.host_of_node)})"
                    )
                runtime.engine.schedule(
                    nc.at_time,
                    lambda n=nc.node: runtime._node_down(n),
                    kind=EventKind.NODE_DOWN,
                    label=f"crash node {nc.node}",
                )
                if nc.rejoin_after is not None:
                    runtime.engine.schedule(
                        nc.at_time + nc.rejoin_after,
                        lambda n=nc.node: runtime._node_up(n),
                        kind=EventKind.NODE_UP,
                        label=f"rejoin node {nc.node}",
                    )

    def _resolve_worker(self, name: str) -> "Worker":
        assert self.rt is not None
        for w in self.rt.workers:
            if name in (w.name, w.device.name):
                return w
        raise KeyError(f"fault plan names unknown worker/device {name!r}")

    # ------------------------------------------------------------------
    # Consultation (runtime asks before committing to an outcome)
    # ------------------------------------------------------------------
    def task_fault_at_start(
        self, t: "TaskInstance", worker: "Worker"
    ) -> Optional[float]:
        """Fraction of the duration after which this start faults, or None."""
        if self.injector is None:
            return None
        assert t.chosen_version is not None
        return self.injector.task_fault(
            worker.name, worker.device.name, t.chosen_version.kernel
        )

    def task_hang_at_start(self, t: "TaskInstance", worker: "Worker") -> bool:
        """Whether this execution hangs (never fires a completion event)."""
        if self.injector is None:
            return False
        assert t.chosen_version is not None
        if self.injector.task_hang(
            worker.name, worker.device.name, t.chosen_version.kernel
        ):
            self.stats.hangs += 1
            return True
        return False

    def slowdown_factor(self, worker: "Worker") -> float:
        """Duration multiplier of a task starting on ``worker`` now."""
        if self.injector is None:
            return 1.0
        assert self.rt is not None
        return self.injector.slowdown_factor(
            worker.name, worker.device.name, self.rt.engine.now
        )

    def transfer_fault(self, src: str, dst: str) -> bool:
        if self.injector is None:
            return False
        if self.injector.transfer_fault(src, dst):
            self.stats.transfer_faults += 1
            return True
        return False

    def message_fault(self, src: str, dst: str, label: str):
        """Fault (if any) suffered by one message transmission."""
        if self.injector is None:
            return None
        fault = self.injector.message_fault(src, dst, label)
        if fault is not None:
            if fault.drop:
                self.stats.messages_dropped += 1
            elif fault.duplicate:
                self.stats.messages_duplicated += 1
            elif fault.delay > 0.0:
                self.stats.messages_delayed += 1
        return fault

    def link_factors(self, src: str, dst: str, now: float) -> tuple[float, float]:
        """Composed (bandwidth, latency) degradation of a hop at ``now``."""
        if self.injector is None:
            return 1.0, 1.0
        return self.injector.link_factors(src, dst, now)

    @property
    def max_transfer_retries(self) -> int:
        return self.policy.transfer_max_retries

    def transfer_retry(self, attempt: int) -> float:
        """Account one transfer retry; returns its backoff delay."""
        self.stats.transfer_retries += 1
        return self.policy.transfer_backoff * (2.0 ** (attempt - 1))

    # ------------------------------------------------------------------
    # Notification (runtime reports what happened)
    # ------------------------------------------------------------------
    def on_task_fault(
        self, t: "TaskInstance", worker: "Worker", *, will_retry: bool = True
    ) -> None:
        """A running task faulted transiently on ``worker``.

        Burns one unit of the task's retry budget, records the failed
        (version, worker) pair for alternate-pair preference, and may
        quarantine the worker.  Raises when the budget is exhausted.

        ``will_retry=False`` accounts a fault that causes no retry — a
        faulted speculative copy, or a faulted primary whose live copy
        carries the task — charging the worker streak but not the task's
        retry budget.
        """
        assert self.rt is not None and t.chosen_version is not None
        self.stats.task_faults += 1
        t.failed_pairs.add((t.chosen_version.name, worker.name))
        self._transient[worker.name] = self._transient.get(worker.name, 0) + 1
        self._worker_faults[worker.name] = self._worker_faults.get(worker.name, 0) + 1
        if will_retry:
            t.attempts += 1
            if t.attempts > self.policy.max_task_retries:
                raise TaskRetryExceededError(
                    f"task {t.label!r} faulted {t.attempts} times "
                    f"(retry budget {self.policy.max_task_retries})"
                )
            self.stats.retries += 1
        if (
            worker.alive
            and worker.quarantined_until is None
            and self._transient[worker.name] >= self.policy.quarantine_threshold
        ):
            self._quarantine(worker)

    def on_task_success(self, worker: "Worker") -> None:
        """A task completed cleanly: the worker's fault streak resets."""
        self._transient[worker.name] = 0
        self._worker_completions[worker.name] = (
            self._worker_completions.get(worker.name, 0) + 1
        )

    # ------------------------------------------------------------------
    # Straggler detection and speculative re-execution
    # ------------------------------------------------------------------
    def on_task_start(
        self, t: "TaskInstance", worker: "Worker", nominal: float
    ) -> None:
        """An execution began; arm its adaptive deadline if enabled.

        Speculative copies are never watched themselves (no recursive
        speculation): the primary's progress is what matters, and a hung
        copy alongside a hung primary surfaces via the progress watchdog.
        """
        if not self.policy.speculate or t.speculative_of is not None:
            return
        self.watchdog.arm(t, worker, nominal)

    def on_task_stop(self, t: "TaskInstance") -> None:
        """An execution ended (any way); its deadline is disarmed."""
        self.watchdog.disarm(t)

    def on_straggler(self, t: "TaskInstance", worker: "Worker") -> None:
        """``t``'s deadline expired while still running on ``worker``.

        Prefers launching a speculative copy on the best alternate
        (version, worker) pair; with no pair (or no budget) the
        straggling execution is aborted and retried like a transient
        fault.  Either way the ``straggler`` trace record is followed by
        a ``speculate`` or ``retry`` record (SAN-T007).
        """
        rt = self.rt
        assert rt is not None and t.chosen_version is not None
        now = rt.engine.now
        self.stats.straggler_detected += 1
        rt.trace.add(
            now, now, worker.name, "straggler", t.chosen_version.name,
            meta=(rt._local_ids[t.uid],),
        )
        pair = self._choose_speculation_pair(t, worker)
        if (
            pair is not None
            and len(self._active_spec) < self.policy.max_concurrent_speculations
            and self._spec_count.get(t.uid, 0) < self.policy.max_speculations_per_task
        ):
            version, target = pair
            self._spec_count[t.uid] = self._spec_count.get(t.uid, 0) + 1
            self.stats.speculations_launched += 1
            rt.trace.add(
                now, now, target.name, "speculate", version.name,
                meta=(rt._local_ids[t.uid],),
            )
            shadow = rt._launch_speculation(t, target, version)
            self._active_spec[t.uid] = shadow.uid
            return
        rt._abort_straggler(t, worker)

    def _choose_speculation_pair(
        self, t: "TaskInstance", worker: "Worker"
    ) -> Optional[tuple]:
        """Best (version, worker) pair for a speculative copy of ``t``.

        The straggling worker itself is excluded (it is serial — a copy
        queued behind a hung execution would never start), as are dead
        and quarantined workers and every pair the task already faulted
        on.  Among the rest, minimise estimated-busy-time + version mean
        (the earliest-executor rule), falling back to queue load for
        schedulers without estimates.
        """
        rt = self.rt
        assert rt is not None and t.chosen_version is not None
        scheduler = rt.scheduler
        now = rt.engine.now
        table = getattr(scheduler, "table", None)
        group = table.group(t.name, t.data_bytes) if table is not None else None
        est_busy = getattr(scheduler, "estimated_busy_time", None)
        best: Optional[tuple] = None
        best_pair: Optional[tuple] = None
        for version in t.definition.versions:
            mean = group.mean_time(version.name) if group is not None else None
            for w in scheduler.capable_workers(version):
                if w is worker or not w.available(now):
                    continue
                if (version.name, w.name) in t.failed_pairs:
                    continue
                busy = est_busy(w) if est_busy is not None else float(w.load())
                key = (busy + (mean if mean is not None else 0.0), w.name, version.name)
                if best is None or key < best:
                    best = key
                    best_pair = (version, w)
        return best_pair

    def on_speculation_won(
        self, primary: "TaskInstance", loser: Optional["Worker"]
    ) -> None:
        """The speculative copy finished first; the original lost.

        The abandoned execution is a strike against its worker, feeding
        the same consecutive-fault streak that drives quarantine — a
        worker that keeps losing races to its peers is degraded, whether
        or not it ever faults outright.
        """
        self._active_spec.pop(primary.uid, None)
        self.stats.speculations_won += 1
        if loser is None:
            return
        self._transient[loser.name] = self._transient.get(loser.name, 0) + 1
        self._worker_faults[loser.name] = self._worker_faults.get(loser.name, 0) + 1
        if (
            loser.alive
            and loser.quarantined_until is None
            and self._transient[loser.name] >= self.policy.quarantine_threshold
        ):
            self._quarantine(loser)

    def on_speculation_wasted(self, primary: "TaskInstance") -> None:
        """The speculative copy was withdrawn (original finished first,
        the copy faulted, or its worker was lost)."""
        self._active_spec.pop(primary.uid, None)
        self.stats.speculations_wasted += 1

    # ------------------------------------------------------------------
    # Observed fault rates (fault-aware cost estimation)
    # ------------------------------------------------------------------
    def worker_fault_rate(self, worker_name: str) -> float:
        """Fraction of this worker's task starts that faulted transiently.

        Derived from the cumulative fault/completion counters; 0.0 with
        no history, so schedulers may consult it unconditionally.
        """
        faults = self._worker_faults.get(worker_name, 0)
        completions = self._worker_completions.get(worker_name, 0)
        attempts = faults + completions
        return faults / attempts if attempts else 0.0

    def fault_rates(self) -> dict[str, float]:
        """Observed fault rate per worker with any history."""
        names = set(self._worker_faults) | set(self._worker_completions)
        return {n: self.worker_fault_rate(n) for n in sorted(names)}

    def on_worker_down(self, worker: "Worker", redispatched: int) -> None:
        self.stats.worker_failures += 1
        self.stats.tasks_redispatched += redispatched

    # ------------------------------------------------------------------
    # Quarantine
    # ------------------------------------------------------------------
    def _quarantine(self, worker: "Worker") -> None:
        rt = self.rt
        assert rt is not None
        now = rt.engine.now
        repeat = self._quarantine_count.get(worker.name, 0)
        cooldown = self.policy.quarantine_cooldown * (
            self.policy.quarantine_backoff ** repeat
        )
        self._quarantine_count[worker.name] = repeat + 1
        worker.quarantined_until = now + cooldown
        self.stats.quarantines += 1
        rt.trace.add(now, now, worker.name, "quarantine", f"cooldown={cooldown:.6g}")
        self.stats.tasks_redispatched += rt._drain_worker(worker)
        rt.engine.schedule(
            now + cooldown,
            lambda w=worker: self._readmit(w),
            kind=EventKind.RUNTIME,
            label=f"readmit {worker.name}",
        )

    def _readmit(self, worker: "Worker") -> None:
        worker.quarantined_until = None
        if not worker.alive:  # died while quarantined; stays out for good
            return
        # probation: one more fault re-quarantines immediately, while one
        # clean completion (on_task_success) fully rehabilitates
        self._transient[worker.name] = max(0, self.policy.quarantine_threshold - 1)
        self.stats.readmissions += 1
        rt = self.rt
        assert rt is not None
        rt.trace.add(rt.engine.now, rt.engine.now, worker.name, "readmit",
                     worker.device.name)
        rt.scheduler.worker_up(worker)
