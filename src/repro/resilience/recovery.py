"""Recovery policy: retry budgets, worker quarantine, failure accounting.

The :class:`ResilienceManager` is the runtime's single point of contact
with the fault model.  The runtime *consults* it (does this task start
fault?  does this transfer attempt fail?) and *notifies* it (a task
faulted, a task succeeded, a worker died); the manager owns every
recovery decision:

* **retry budget** — a faulted task re-enters the ready pool until it
  has failed ``max_task_retries`` times, then the run aborts with
  :class:`TaskRetryExceededError`,
* **alternate-pair preference** — the failed (version, worker) pair is
  recorded on the task instance; version-aware schedulers consult it and
  prefer a different pair, turning the paper's ``implements`` tables
  into a graceful-degradation mechanism,
* **quarantine** — ``quarantine_threshold`` *consecutive* transient
  faults on one worker (a success resets the streak) put it in
  quarantine: its queue is drained back to the scheduler and it accepts
  no work for ``quarantine_cooldown`` simulated seconds (scaled by
  ``quarantine_backoff`` per repeat offence).  Re-admission is
  probationary: one more fault re-quarantines immediately, one success
  fully rehabilitates.
* **profile integrity** — a faulted execution never reaches the
  versioning scheduler's profile tables (durations are recorded only in
  ``task_finished``), so surviving workers' estimates stay valid after
  failures.

Everything is driven by simulated time and deterministic counters, so
recovery behaviour is exactly reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from repro.resilience.faults import FaultPlan
from repro.sim.engine import EventKind

if TYPE_CHECKING:  # pragma: no cover
    from repro.runtime.runtime import OmpSsRuntime
    from repro.runtime.task import TaskInstance
    from repro.runtime.worker import Worker


class TaskRetryExceededError(RuntimeError):
    """A task instance exhausted its retry budget."""


class TransferRetryExceededError(RuntimeError):
    """A link transfer kept failing past the bounded retry budget."""


@dataclass
class RecoveryPolicy:
    """Tunables of the recovery machinery."""

    #: Times one task instance may *fail* before the run aborts.
    max_task_retries: int = 3
    #: Consecutive transient faults on one worker before quarantine.
    quarantine_threshold: int = 3
    #: Quarantine length in simulated seconds.
    quarantine_cooldown: float = 0.5
    #: Cooldown multiplier applied per repeated quarantine of a worker.
    quarantine_backoff: float = 2.0
    #: Times one transfer hop may fail before the run aborts.
    transfer_max_retries: int = 3
    #: Base backoff before transfer retry n: ``backoff * 2**(n-1)``.
    transfer_backoff: float = 1e-4

    def __post_init__(self) -> None:
        if self.max_task_retries < 0:
            raise ValueError("max_task_retries must be >= 0")
        if self.quarantine_threshold < 1:
            raise ValueError("quarantine_threshold must be >= 1")
        if self.quarantine_cooldown < 0:
            raise ValueError("quarantine_cooldown must be >= 0")
        if self.quarantine_backoff < 1.0:
            raise ValueError("quarantine_backoff must be >= 1")
        if self.transfer_max_retries < 0:
            raise ValueError("transfer_max_retries must be >= 0")
        if self.transfer_backoff < 0:
            raise ValueError("transfer_backoff must be >= 0")


@dataclass
class ResilienceStats:
    """Fault/recovery counters exposed on :class:`RunResult`."""

    task_faults: int = 0          # transient task failures injected
    retries: int = 0              # task re-dispatches caused by faults
    worker_failures: int = 0      # permanent worker deaths
    tasks_redispatched: int = 0   # queued/running tasks pulled off a dead
                                  # or quarantined worker
    quarantines: int = 0
    readmissions: int = 0
    transfer_faults: int = 0      # failed transfer attempts
    transfer_retries: int = 0     # transfer attempts re-issued

    def as_dict(self) -> dict[str, int]:
        return {
            "task_faults": self.task_faults,
            "retries": self.retries,
            "worker_failures": self.worker_failures,
            "tasks_redispatched": self.tasks_redispatched,
            "quarantines": self.quarantines,
            "readmissions": self.readmissions,
            "transfer_faults": self.transfer_faults,
            "transfer_retries": self.transfer_retries,
        }

    @property
    def any_failures(self) -> bool:
        return any(self.as_dict().values())


class ResilienceManager:
    """Owns fault consultation and recovery for one runtime instance."""

    def __init__(
        self,
        plan: Optional[FaultPlan] = None,
        policy: Optional[RecoveryPolicy] = None,
    ) -> None:
        self.plan = plan
        self.policy = policy if policy is not None else RecoveryPolicy()
        self.stats = ResilienceStats()
        self.injector = plan.injector() if plan is not None and not plan.empty else None
        self.rt: Optional["OmpSsRuntime"] = None
        # worker name -> consecutive transient faults since last success
        self._transient: dict[str, int] = {}
        # worker name -> how many times it has been quarantined
        self._quarantine_count: dict[str, int] = {}
        # cumulative per-worker history, feeding the versioning
        # scheduler's fault-aware cost estimation (`fault_aware=True`)
        self._worker_faults: dict[str, int] = {}
        self._worker_completions: dict[str, int] = {}

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def bind(self, runtime: "OmpSsRuntime") -> None:
        """Attach to a runtime; schedules the plan's worker deaths."""
        self.rt = runtime
        self._transient = {w.name: 0 for w in runtime.workers}
        if self.plan is None:
            return
        for wf in self.plan.worker_failures:
            worker = self._resolve_worker(wf.worker)
            runtime.engine.schedule(
                wf.at_time,
                lambda w=worker: runtime._worker_down(w),
                kind=EventKind.WORKER_DOWN,
                label=f"fail {worker.name}",
            )

    def _resolve_worker(self, name: str) -> "Worker":
        assert self.rt is not None
        for w in self.rt.workers:
            if name in (w.name, w.device.name):
                return w
        raise KeyError(f"fault plan names unknown worker/device {name!r}")

    # ------------------------------------------------------------------
    # Consultation (runtime asks before committing to an outcome)
    # ------------------------------------------------------------------
    def task_fault_at_start(
        self, t: "TaskInstance", worker: "Worker"
    ) -> Optional[float]:
        """Fraction of the duration after which this start faults, or None."""
        if self.injector is None:
            return None
        assert t.chosen_version is not None
        return self.injector.task_fault(
            worker.name, worker.device.name, t.chosen_version.kernel
        )

    def transfer_fault(self, src: str, dst: str) -> bool:
        if self.injector is None:
            return False
        if self.injector.transfer_fault(src, dst):
            self.stats.transfer_faults += 1
            return True
        return False

    @property
    def max_transfer_retries(self) -> int:
        return self.policy.transfer_max_retries

    def transfer_retry(self, attempt: int) -> float:
        """Account one transfer retry; returns its backoff delay."""
        self.stats.transfer_retries += 1
        return self.policy.transfer_backoff * (2.0 ** (attempt - 1))

    # ------------------------------------------------------------------
    # Notification (runtime reports what happened)
    # ------------------------------------------------------------------
    def on_task_fault(self, t: "TaskInstance", worker: "Worker") -> None:
        """A running task faulted transiently on ``worker``.

        Burns one unit of the task's retry budget, records the failed
        (version, worker) pair for alternate-pair preference, and may
        quarantine the worker.  Raises when the budget is exhausted.
        """
        assert self.rt is not None and t.chosen_version is not None
        self.stats.task_faults += 1
        t.attempts += 1
        t.failed_pairs.add((t.chosen_version.name, worker.name))
        self._transient[worker.name] = self._transient.get(worker.name, 0) + 1
        self._worker_faults[worker.name] = self._worker_faults.get(worker.name, 0) + 1
        if t.attempts > self.policy.max_task_retries:
            raise TaskRetryExceededError(
                f"task {t.label!r} faulted {t.attempts} times "
                f"(retry budget {self.policy.max_task_retries})"
            )
        self.stats.retries += 1
        if (
            worker.alive
            and worker.quarantined_until is None
            and self._transient[worker.name] >= self.policy.quarantine_threshold
        ):
            self._quarantine(worker)

    def on_task_success(self, worker: "Worker") -> None:
        """A task completed cleanly: the worker's fault streak resets."""
        self._transient[worker.name] = 0
        self._worker_completions[worker.name] = (
            self._worker_completions.get(worker.name, 0) + 1
        )

    # ------------------------------------------------------------------
    # Observed fault rates (fault-aware cost estimation)
    # ------------------------------------------------------------------
    def worker_fault_rate(self, worker_name: str) -> float:
        """Fraction of this worker's task starts that faulted transiently.

        Derived from the cumulative fault/completion counters; 0.0 with
        no history, so schedulers may consult it unconditionally.
        """
        faults = self._worker_faults.get(worker_name, 0)
        completions = self._worker_completions.get(worker_name, 0)
        attempts = faults + completions
        return faults / attempts if attempts else 0.0

    def fault_rates(self) -> dict[str, float]:
        """Observed fault rate per worker with any history."""
        names = set(self._worker_faults) | set(self._worker_completions)
        return {n: self.worker_fault_rate(n) for n in sorted(names)}

    def on_worker_down(self, worker: "Worker", redispatched: int) -> None:
        self.stats.worker_failures += 1
        self.stats.tasks_redispatched += redispatched

    # ------------------------------------------------------------------
    # Quarantine
    # ------------------------------------------------------------------
    def _quarantine(self, worker: "Worker") -> None:
        rt = self.rt
        assert rt is not None
        now = rt.engine.now
        repeat = self._quarantine_count.get(worker.name, 0)
        cooldown = self.policy.quarantine_cooldown * (
            self.policy.quarantine_backoff ** repeat
        )
        self._quarantine_count[worker.name] = repeat + 1
        worker.quarantined_until = now + cooldown
        self.stats.quarantines += 1
        rt.trace.add(now, now, worker.name, "quarantine", f"cooldown={cooldown:.6g}")
        self.stats.tasks_redispatched += rt._drain_worker(worker)
        rt.engine.schedule(
            now + cooldown,
            lambda w=worker: self._readmit(w),
            kind=EventKind.RUNTIME,
            label=f"readmit {worker.name}",
        )

    def _readmit(self, worker: "Worker") -> None:
        worker.quarantined_until = None
        if not worker.alive:  # died while quarantined; stays out for good
            return
        # probation: one more fault re-quarantines immediately, while one
        # clean completion (on_task_success) fully rehabilitates
        self._transient[worker.name] = max(0, self.policy.quarantine_threshold - 1)
        self.stats.readmissions += 1
        rt = self.rt
        assert rt is not None
        rt.trace.add(rt.engine.now, rt.engine.now, worker.name, "readmit",
                     worker.device.name)
        rt.scheduler.worker_up(worker)
