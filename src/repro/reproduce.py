"""Command-line reproduction driver.

Regenerates any table/figure of the paper from the terminal::

    python -m repro.reproduce list
    python -m repro.reproduce fig6 fig8
    python -m repro.reproduce all --quick

``--quick`` shrinks the sweeps (smaller tile/block grids, fewer
generations) so every figure renders in a few seconds; the default
scales match the benchmark harness.

``--profile-store PATH`` makes the sweeps durable: every versioning
scheduler the figures create is warm-started from the store (per
``--warm-start``: trust / probation / cold) and the learned tables are
merged back into it afterward.  Stores created this way carry no device
fingerprint — figure sweeps span many machine shapes, so the caller
owns comparability.

``--speculate`` (and ``--deadline-k K``) turn on straggler robustness
for every run the figures perform: profile-derived adaptive deadlines
(``mean + k*sigma``) with speculative re-execution of tasks that blow
past them.  On a fault-free simulation this is a near no-op; it is the
switch the chaos/robustness workflows flip.
"""

from __future__ import annotations

import argparse
import sys
from typing import Any, Callable

from repro.analysis import experiments
from repro.analysis.report import format_table, stacked_percentages


def _fig6(quick: bool) -> str:
    rows = experiments.fig6_matmul_performance(
        smp_counts=(1, 4, 8, 12) if not quick else (1, 8),
        gpu_counts=(1, 2),
        n_tiles=16 if not quick else 8,
    )
    return format_table(
        ["smp", "gpus", "mm-gpu-aff", "mm-gpu-dep", "mm-hyb-ver"],
        [[r["smp"], r["gpus"], r["mm-gpu-aff"], r["mm-gpu-dep"], r["mm-hyb-ver"]]
         for r in rows],
        title="Figure 6 — matmul performance (GFLOP/s)",
    )


def _fig7(quick: bool) -> str:
    rows = experiments.fig7_matmul_transfers(
        smp_counts=(4, 12) if not quick else (8,),
        gpu_counts=(2,),
        n_tiles=16 if not quick else 8,
    )
    return format_table(
        ["smp", "gpus", "config", "Input Tx", "Output Tx", "Device Tx", "total"],
        [[r["smp"], r["gpus"], r["config"], r["input_tx"], r["output_tx"],
          r["device_tx"], r["total"]] for r in rows],
        title="Figure 7 — matmul data transferred (GB)",
        floatfmt="{:.2f}",
    )


def _fig8(quick: bool) -> str:
    rows = experiments.fig8_matmul_task_stats(
        smp_counts=(1, 4, 8, 12) if not quick else (8,),
        gpu_counts=(1, 2),
        n_tiles=16 if not quick else 8,
    )
    series = {
        f"{r['smp']}smp+{r['gpus']}gpu": {k: r[k] for k in ("CUBLAS", "CUDA", "SMP")}
        for r in rows
    }
    return stacked_percentages(series, title="Figure 8 — matmul task versions run",
                               order=("CUBLAS", "CUDA", "SMP"))


def _fig9(quick: bool) -> str:
    rows = experiments.fig9_cholesky_performance(
        smp_counts=(2, 8), gpu_counts=(2,), n_blocks=16 if not quick else 8
    )
    return format_table(
        ["smp", "gpus", "potrf-smp-dep", "potrf-gpu-aff", "potrf-gpu-dep",
         "potrf-hyb-ver"],
        [[r["smp"], r["gpus"], r["potrf-smp-dep"], r["potrf-gpu-aff"],
          r["potrf-gpu-dep"], r["potrf-hyb-ver"]] for r in rows],
        title="Figure 9 — Cholesky performance (GFLOP/s)",
    )


def _fig10(quick: bool) -> str:
    rows = experiments.fig10_cholesky_transfers(
        smp_counts=(2,), gpu_counts=(2,), n_blocks=16 if not quick else 8
    )
    return format_table(
        ["smp", "gpus", "config", "Input Tx", "Output Tx", "Device Tx", "total"],
        [[r["smp"], r["gpus"], r["config"], r["input_tx"], r["output_tx"],
          r["device_tx"], r["total"]] for r in rows],
        title="Figure 10 — Cholesky data transferred (GB)",
        floatfmt="{:.2f}",
    )


def _fig11(quick: bool) -> str:
    rows = experiments.fig11_cholesky_task_stats(
        smp_counts=(2, 8), gpu_counts=(2,), n_blocks=16 if not quick else 8
    )
    series = {f"{r['smp']}smp+{r['gpus']}gpu": {k: r[k] for k in ("GPU", "SMP")}
              for r in rows}
    return stacked_percentages(series, title="Figure 11 — Cholesky potrf versions run",
                               order=("GPU", "SMP"))


def _fig12(quick: bool) -> str:
    rows = experiments.fig12_pbpi_time(
        smp_counts=(2, 4, 8, 12) if not quick else (4, 8),
        gpu_counts=(2,),
        generations=40 if not quick else 10,
    )
    return format_table(
        ["smp", "gpus", "pbpi-smp (s)", "pbpi-gpu (s)", "pbpi-hyb (s)"],
        [[r["smp"], r["gpus"], r["pbpi-smp"], r["pbpi-gpu"], r["pbpi-hyb"]]
         for r in rows],
        title="Figure 12 — PBPI execution time (s, lower is better)",
        floatfmt="{:.2f}",
    )


def _fig13(quick: bool) -> str:
    rows = experiments.fig13_pbpi_transfers(
        smp_counts=(8,), gpu_counts=(2,), generations=40 if not quick else 10
    )
    return format_table(
        ["smp", "gpus", "config", "Input Tx", "Output Tx", "Device Tx", "total"],
        [[r["smp"], r["gpus"], r["config"], r["input_tx"], r["output_tx"],
          r["device_tx"], r["total"]] for r in rows],
        title="Figure 13 — PBPI data transferred (GB)",
        floatfmt="{:.2f}",
    )


def _fig14(quick: bool) -> str:
    rows = experiments.fig14_pbpi_loop1_stats(
        smp_counts=(4, 8, 12) if not quick else (8,),
        gpu_counts=(2,),
        generations=40 if not quick else 10,
    )
    series = {f"{r['smp']}smp+{r['gpus']}gpu": {k: r[k] for k in ("GPU", "SMP")}
              for r in rows}
    return stacked_percentages(series, title="Figure 14 — PBPI loop-1 versions run",
                               order=("GPU", "SMP"))


def _fig15(quick: bool) -> str:
    rows = experiments.fig15_pbpi_loop2_stats(
        smp_counts=(4, 8, 12) if not quick else (8,),
        gpu_counts=(2,),
        generations=40 if not quick else 10,
    )
    series = {f"{r['smp']}smp+{r['gpus']}gpu": {k: r[k] for k in ("GPU", "SMP")}
              for r in rows}
    return stacked_percentages(series, title="Figure 15 — PBPI loop-2 versions run",
                               order=("GPU", "SMP"))


# populated from --nodes/--partition/--steal in main(); the cluster
# target is parameterised, unlike the fixed paper figures
_cluster_args: dict = {"nodes": (1, 2, 4, 8), "partition": "affinity", "steal": True}

# populated from --net-faults/--node-crash in main(); drives the
# 'chaos' target's unreliable-interconnect sweep
_chaos_args: dict = {"net_faults": 0.05, "node_crash": True}


def _cluster(quick: bool) -> str:
    nodes = _cluster_args["nodes"]
    if quick:
        nodes = tuple(n for n in nodes if n <= 4) or (1, 2)
    rows = experiments.cluster_strong_scaling(
        node_counts=nodes,
        n_tiles=16 if not quick else 8,
        tile_size=1024 if not quick else 512,
        partition=_cluster_args["partition"],
        steal=_cluster_args["steal"],
    )
    return format_table(
        ["nodes", "scheduler", "GFLOP/s", "cross msgs", "steals",
         "mean node util", "min node util"],
        [[r["nodes"], r["scheduler"], r["gflops"], r["cross_msgs"], r["steals"],
          r["mean_node_util"], r["min_node_util"]] for r in rows],
        title=(
            "Cluster strong scaling — sharded vs global "
            f"(partition={_cluster_args['partition']}, "
            f"steal={'on' if _cluster_args['steal'] else 'off'})"
        ),
        floatfmt="{:.2f}",
    )


def _chaos(quick: bool) -> str:
    loss = _chaos_args["net_faults"]
    rows = experiments.cluster_chaos(
        (loss,) if loss > 0 else (),
        nodes=4,
        n_tiles=16 if not quick else 8,
        tile_size=1024 if not quick else 512,
        partition="block",
        crash=_chaos_args["node_crash"],
    )
    return format_table(
        ["loss", "crash", "makespan (s)", "slowdown", "dropped", "retransmits",
         "dups", "evacuated", "recomputed"],
        [[r["loss"], "yes" if r["crash"] else "no", r["makespan"], r["slowdown"],
          r["dropped"], r["retransmits"], r["dup_suppressed"], r["evacuated"],
          r["recomputed"]] for r in rows],
        title=(
            "Cluster chaos — sharded matmul on 4 nodes under "
            f"{loss:.0%} notification loss"
            + (" + mid-run node crash" if _chaos_args["node_crash"] else "")
        ),
        floatfmt="{:.3f}",
    )


def _table1(quick: bool) -> str:
    _, rendered = experiments.table1_taskversionset()
    return "Table I — TaskVersionSet structure\n" + rendered


def _fig5(quick: bool) -> str:
    row = experiments.fig5_earliest_executor_decision()
    return format_table(
        ["smp task runs", "gpu task runs", "makespan (s)", "GFLOP/s"],
        [[row["smp_runs"], row["gpu_runs"], row["makespan"], row["gflops"]]],
        title="Figure 5 — earliest-executor decision",
        floatfmt="{:.3f}",
    )


FIGURES: dict[str, Callable[[bool], str]] = {
    "table1": _table1,
    "fig5": _fig5,
    "fig6": _fig6,
    "fig7": _fig7,
    "fig8": _fig8,
    "fig9": _fig9,
    "fig10": _fig10,
    "fig11": _fig11,
    "fig12": _fig12,
    "fig13": _fig13,
    "fig14": _fig14,
    "fig15": _fig15,
    "cluster": _cluster,
    "chaos": _chaos,
}


def _print_service_summary(router: "Any") -> None:
    if router is None:
        return
    print(
        f"scheduler service: {router.routed} run(s) routed "
        f"({router.cache_hits} served from cache), "
        f"{router.fallbacks} ran locally"
    )


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.reproduce",
        description="Regenerate tables/figures of Planas et al., IPDPS 2013.",
    )
    parser.add_argument(
        "targets",
        nargs="+",
        help="figure ids (e.g. fig6 table1), 'all', or 'list'",
    )
    parser.add_argument(
        "--quick", action="store_true", help="reduced scales (seconds per figure)"
    )
    parser.add_argument(
        "--profile-store",
        metavar="PATH",
        default=None,
        help="warm-start versioning schedulers from this profile store and "
        "merge the learned tables back into it afterward",
    )
    parser.add_argument(
        "--warm-start",
        choices=("trust", "probation", "cold"),
        default="trust",
        help="warm-start policy for preloaded profiles (default: trust)",
    )
    parser.add_argument(
        "--speculate",
        action="store_true",
        help="arm profile-derived straggler deadlines and speculatively "
        "re-execute tasks that blow past mean + k*sigma",
    )
    parser.add_argument(
        "--deadline-k",
        type=float,
        default=None,
        metavar="K",
        help="sigma multiplier of the straggler deadline (implies "
        "--speculate; default 4.0)",
    )
    parser.add_argument(
        "--serve",
        action="store_true",
        help="run the figures through an in-process scheduler service: "
        "every app run is submitted as a spec, cached, and replayed "
        "from the result cache when repeated",
    )
    parser.add_argument(
        "--service-addr",
        metavar="HOST:PORT",
        default=None,
        help="submit app runs to an already-running scheduler service "
        "(python -m repro.service serve) instead of simulating locally",
    )
    parser.add_argument(
        "--nodes",
        default="1,2,4,8",
        metavar="N[,N...]",
        help="node counts swept by the 'cluster' target (default: 1,2,4,8)",
    )
    parser.add_argument(
        "--partition",
        choices=("hash", "block", "affinity"),
        default="affinity",
        help="graph-partition policy for the 'cluster' target",
    )
    parser.add_argument(
        "--steal",
        dest="steal",
        action="store_true",
        default=True,
        help="enable inter-node work stealing for the 'cluster' target (default)",
    )
    parser.add_argument(
        "--no-steal", dest="steal", action="store_false",
        help="disable inter-node work stealing for the 'cluster' target",
    )
    parser.add_argument(
        "--net-faults",
        type=float,
        default=0.05,
        metavar="RATE",
        help="notification loss probability for the 'chaos' target "
        "(default: 0.05; 0 disables message faults)",
    )
    parser.add_argument(
        "--node-crash",
        dest="node_crash",
        action="store_true",
        default=True,
        help="layer a mid-run node crash onto the 'chaos' target (default)",
    )
    parser.add_argument(
        "--no-node-crash", dest="node_crash", action="store_false",
        help="run the 'chaos' target with message faults only",
    )
    args = parser.parse_args(argv)
    if not 0.0 <= args.net_faults < 1.0:
        parser.error(f"--net-faults expects a probability in [0, 1), got {args.net_faults}")

    try:
        node_counts = tuple(int(n) for n in args.nodes.split(",") if n.strip())
    except ValueError:
        parser.error(f"--nodes expects comma-separated integers, got {args.nodes!r}")
    if not node_counts or any(n < 1 for n in node_counts):
        parser.error("--nodes needs at least one positive node count")
    _cluster_args.update(
        nodes=node_counts, partition=args.partition, steal=args.steal
    )
    _chaos_args.update(net_faults=args.net_faults, node_crash=args.node_crash)

    if args.targets == ["list"]:
        for name in FIGURES:
            print(name)
        return 0

    targets = list(FIGURES) if "all" in args.targets else args.targets
    unknown = [t for t in targets if t not in FIGURES]
    if unknown:
        parser.error(
            f"unknown figure(s): {', '.join(unknown)}; valid: {', '.join(FIGURES)}"
        )

    if args.serve and args.service_addr:
        parser.error("--serve and --service-addr are mutually exclusive")
    service_stack: Any = None
    service_router = None
    if args.serve or args.service_addr:
        import contextlib

        from repro.service import (
            HarnessClient,
            ServiceClient,
            ServiceConfig,
            ServiceHarness,
            route_via_service,
        )

        service_stack = contextlib.ExitStack()
        if args.service_addr:
            host, _, port_s = args.service_addr.rpartition(":")
            try:
                port = int(port_s)
            except ValueError:
                parser.error(
                    f"--service-addr expects HOST:PORT, got {args.service_addr!r}"
                )
            client: Any = service_stack.enter_context(
                ServiceClient(host or "127.0.0.1", port)
            )
        else:
            harness = service_stack.enter_context(ServiceHarness(ServiceConfig()))
            client = HarnessClient(harness)
        service_router = service_stack.enter_context(route_via_service(client))
    else:
        from contextlib import nullcontext

        service_stack = nullcontext()

    if args.speculate or args.deadline_k is not None:
        from repro.resilience import RecoveryPolicy, recovery_defaults

        policy_kwargs: dict = {"speculate": True}
        if args.deadline_k is not None:
            policy_kwargs["deadline_k"] = args.deadline_k
        recovery_guard = recovery_defaults(RecoveryPolicy(**policy_kwargs))
    else:
        from contextlib import nullcontext

        recovery_guard = nullcontext()

    if args.profile_store is None:
        with service_stack, recovery_guard:
            for t in targets:
                print(FIGURES[t](args.quick))
                print()
        _print_service_summary(service_router)
        return 0

    from repro.schedulers.registry import scheduler_defaults
    from repro.store import ProfileStore, warm_start_options

    store = ProfileStore(args.profile_store)
    defaults = warm_start_options(store, policy=args.warm_start)
    with service_stack, recovery_guard, scheduler_defaults(
        "versioning", **defaults
    ) as created:
        for t in targets:
            print(FIGURES[t](args.quick))
            print()
    _print_service_summary(service_router)
    tables = [s.table for s in created]
    # figure sweeps span many simulated machine shapes, so the merged
    # store carries no single device fingerprint; warm-started tables
    # already contain the store's history, so the baseline is only
    # re-merged for cold runs
    warmed = any(s.preloaded_entries for s in created)
    if store.absorb(tables, fingerprint=None, merge_base=not warmed) is not None:
        preloaded = sum(s.preloaded_entries for s in created)
        print(
            f"profile store: absorbed {len(tables)} run(s) into "
            f"{args.profile_store} (policy {args.warm_start}, "
            f"{preloaded} preloaded entries)"
        )
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
